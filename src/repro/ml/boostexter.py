"""BStump: confidence-rated AdaBoost with decision stumps.

This is a from-scratch reimplementation of the learner the paper calls
*BStump* -- "the Adaboost algorithm with decision stumps (i.e. one-level
decision trees)", using Boostexter [Schapire & Singer 2000] semantics:

* weak learners are real-valued decision stumps (:mod:`repro.ml.stumps`);
* each round picks the stump minimising the weighted normaliser Z;
* sample weights are updated multiplicatively,
  ``D_{t+1}(i) ~ D_t(i) * exp(-y_i * h_t(x_i))``;
* the final score is the additive margin ``f(x) = sum_t h_t(x)``, which is
  converted to a posterior probability with logistic (Platt) calibration
  (:class:`repro.ml.calibration.PlattCalibrator`), exactly as in Section
  4.4 of the paper.

The resulting model is linear in the space of stump indicator functions,
which the paper argues is robust against the label noise inherent in
tickets (unreported problems are mislabelled negatives).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.ml.binning import BinnedDataset
from repro.ml.calibration import PlattCalibrator
from repro.ml.ensemble_scoring import CompiledEnsemble, compile_stumps
from repro.ml.stumps import HistStumpSearch, Stump, StumpSearch
from repro.obs.metrics import get_registry
from repro.obs.tracing import span, tracing_enabled

__all__ = ["BStumpConfig", "WeakLearner", "BStump", "TRAIN_BACKENDS"]

#: Supported training backends: "exact" is the sorted-domain search,
#: "hist" the histogram-binned one (see :mod:`repro.ml.binning`).
TRAIN_BACKENDS = ("exact", "hist")

#: Per-round stump-search times: microseconds on test fixtures up to
#: seconds on benchmark-scale matrices.
_ROUND_TIME_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Z-loss of selected stumps; Z near 1.0 means the learner is almost
#: abstaining (the early-stop region), low Z means strong rounds.
_ROUND_Z_BUCKETS = (0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95, 0.98, 0.99, 1.0)


def _train_metrics():
    registry = get_registry()
    return (
        registry.counter(
            "repro_train_rounds_total", "Boosting rounds trained"
        ),
        registry.histogram(
            "repro_train_round_seconds",
            "Stump search + weight update wall time per boosting round",
            buckets=_ROUND_TIME_BUCKETS,
        ),
        registry.histogram(
            "repro_train_round_z",
            "Z-loss of the stump selected each boosting round",
            buckets=_ROUND_Z_BUCKETS,
        ),
        registry.gauge(
            "repro_train_margin_mean_abs",
            "Mean |margin| after the latest boosting round (traced runs)",
        ),
    )


@dataclass(frozen=True)
class BStumpConfig:
    """Training configuration for :class:`BStump`.

    Attributes:
        n_rounds: number of boosting iterations T.  The paper uses 800 for
            the ticket predictor and 200 for the trouble locator, chosen by
            cross-validation; our simulated datasets are smaller so the
            defaults here are lower and everything is overridable.
        early_stop_z: stop early when the best achievable Z of a round
            exceeds this value (a Z of ~1.0 means the weak learner is no
            better than abstaining, so further rounds only overfit noise).
        calibrate: fit a Platt calibrator on the training margins so that
            :meth:`BStump.predict_proba` is available.
        missing_policy: how stumps treat NaN values -- "score" (default)
            gives missing values their own confidence-rated block,
            "abstain" outputs 0 (see :mod:`repro.ml.stumps`).
        max_split_points: per-feature candidate-threshold cap per round
            for the exact backend (quantile-strided above the cap; exact
            below).
        backend: "exact" runs the sorted-domain
            :class:`~repro.ml.stumps.StumpSearch` every round; "hist"
            pre-bins each feature once and searches per-bin histograms
            (:class:`~repro.ml.stumps.HistStumpSearch`) -- several times
            faster per round, identical stumps whenever every feature has
            at most ``n_bins`` distinct values, and otherwise aligned
            with the exact backend's own quantile candidate grid.
        n_bins: bin budget per feature for the hist backend (missing
            values get one extra dedicated bin).  Keep it equal to
            ``max_split_points`` so both backends scan comparable
            candidate sets.
    """

    n_rounds: int = 200
    early_stop_z: float = 0.999999
    calibrate: bool = True
    missing_policy: str = "score"
    max_split_points: int = 256
    backend: str = "exact"
    n_bins: int = 256

    def __post_init__(self) -> None:
        if self.backend not in TRAIN_BACKENDS:
            raise ValueError(
                f"backend must be one of {TRAIN_BACKENDS}, got {self.backend!r}"
            )
        if self.n_bins < 2:
            raise ValueError(f"n_bins must be at least 2, got {self.n_bins}")


@dataclass(frozen=True)
class WeakLearner:
    """One boosting round: a stump and the Z it achieved when selected."""

    stump: Stump
    round_index: int
    z: float


@dataclass
class BStump:
    """AdaBoost over decision stumps with Platt-calibrated outputs.

    Typical use::

        model = BStump(BStumpConfig(n_rounds=400))
        model.fit(X_train, y_train, categorical=mask)
        scores = model.decision_function(X_test)   # additive margin f(x)
        probs = model.predict_proba(X_test)        # P(y=+1 | x)

    ``X`` is a dense float matrix with NaN for missing values; ``y`` holds
    labels in {-1, +1} (0/1 labels are converted automatically).
    """

    config: BStumpConfig = field(default_factory=BStumpConfig)
    learners: list[WeakLearner] = field(default_factory=list)
    calibrator: PlattCalibrator | None = None
    n_features_: int | None = None
    train_z_: list[float] = field(default_factory=list)
    _compiled: CompiledEnsemble | None = field(
        default=None, repr=False, compare=False
    )
    _compiled_n_learners: int = field(default=-1, repr=False, compare=False)

    @staticmethod
    def _canonical_labels(y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float)
        uniq = set(np.unique(y).tolist())
        if uniq <= {0.0, 1.0}:
            return np.where(y > 0, 1.0, -1.0)
        if uniq <= {-1.0, 1.0}:
            return y
        raise ValueError(f"labels must be in {{0,1}} or {{-1,+1}}, got {sorted(uniq)}")

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        categorical: np.ndarray | None = None,
        sample_weight: np.ndarray | None = None,
        binned: BinnedDataset | None = None,
    ) -> "BStump":
        """Train the boosted model.

        Args:
            X: (n_samples, n_features) float matrix, NaN = missing.
            y: labels, {0, 1} or {-1, +1}.
            categorical: optional boolean mask marking categorical columns.
            sample_weight: optional non-negative initial example weights.
            binned: pre-binned form of ``X`` for the hist backend.  Pass
                one (e.g. the binning the selection sweep already built)
                to skip re-binning; ignored by the exact backend.

        Returns:
            self, for chaining.
        """
        X = np.asarray(X, dtype=float)
        y = self._canonical_labels(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if len(np.unique(y)) < 2:
            raise ValueError("training data must contain both classes")

        n = X.shape[0]
        if sample_weight is None:
            weights = np.full(n, 1.0 / n)
        else:
            weights = np.asarray(sample_weight, dtype=float)
            if weights.shape != (n,):
                raise ValueError("sample_weight must have one entry per row")
            if np.any(weights < 0):
                raise ValueError("sample_weight must be non-negative")
            weights = weights / np.sum(weights)

        rounds_total, round_seconds, round_z, margin_gauge = _train_metrics()
        with span(
            "train.fit", rows=int(n), features=int(X.shape[1]),
            rounds=int(self.config.n_rounds),
        ) as fit_span:
            hist = self.config.backend == "hist"
            with span("train.search_setup", backend=self.config.backend):
                if hist:
                    if binned is None:
                        binned = BinnedDataset.from_matrix(
                            X, categorical, max_bins=self.config.n_bins
                        )
                    elif not binned.matches(X):
                        raise ValueError(
                            "binned dataset does not match X: expected "
                            f"{X.shape}, got ({binned.n_rows}, "
                            f"{binned.n_features})"
                        )
                    search: StumpSearch | HistStumpSearch = HistStumpSearch(
                        binned, y, missing_policy=self.config.missing_policy
                    )
                else:
                    search = StumpSearch(
                        X,
                        y,
                        categorical,
                        missing_policy=self.config.missing_policy,
                        max_split_points=self.config.max_split_points,
                    )
            self.learners = []
            self.train_z_ = []
            self.n_features_ = X.shape[1]
            self._compiled = None
            self._compiled_n_learners = -1

            traced_run = tracing_enabled()
            margin = np.zeros(n)
            with span("train.boost_rounds"):
                for t in range(self.config.n_rounds):
                    round_start = perf_counter()
                    stump = search.best_stump(weights)
                    if stump.z >= self.config.early_stop_z and t > 0:
                        break
                    self.learners.append(
                        WeakLearner(stump=stump, round_index=t, z=stump.z)
                    )
                    self.train_z_.append(stump.z)
                    # The hist search reads outputs straight off the bin
                    # codes (one table gather); the exact path keeps the
                    # row-comparison predict unchanged.
                    h = search.round_outputs(stump) if hist else stump.predict(X)
                    margin += h
                    weights = weights * np.exp(-y * h)
                    total = np.sum(weights)
                    round_seconds.observe(perf_counter() - round_start)
                    round_z.observe(stump.z)
                    rounds_total.inc()
                    if traced_run:
                        # The extra O(n) reduction only runs on traced fits.
                        margin_gauge.set(float(np.mean(np.abs(margin))))
                    if not np.isfinite(total) or total <= 0:
                        break
                    weights /= total

            if not self.learners:
                raise RuntimeError("boosting selected no weak learners")
            fit_span.set_tag("rounds_trained", len(self.learners))

            if self.config.calibrate:
                with span("train.calibrate"):
                    self.calibrator = PlattCalibrator().fit(margin, y)
        return self

    def compiled(self) -> CompiledEnsemble:
        """The per-feature compiled form of the fitted ensemble (cached).

        The cache is invalidated by :meth:`fit` and rebuilt automatically
        if the learner list changes length (e.g. a model reconstructed by
        :mod:`repro.ml.serialize`); callers that mutate ``learners`` in
        place without changing its length must clear ``_compiled``
        themselves.
        """
        if not self.learners:
            raise RuntimeError("model is not fitted")
        if self._compiled is None or self._compiled_n_learners != len(self.learners):
            self._compiled = compile_stumps(
                [learner.stump for learner in self.learners], self.n_features_
            )
            self._compiled_n_learners = len(self.learners)
        return self._compiled

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Additive margin ``f(x) = sum_t h_t(x)`` for each row of ``X``.

        Routed through the :class:`CompiledEnsemble` scorer: cost scales
        with the number of distinct features the ensemble uses, not the
        number of boosting rounds.  The margin matches the round-by-round
        sum (:meth:`decision_function_naive`) to within float-addition
        reordering -- a few ULPs -- and is bit-identical to summing the
        stump outputs grouped by feature.
        """
        if not self.learners:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        return self.compiled().decision_function(X)

    def decision_function_naive(self, X: np.ndarray) -> np.ndarray:
        """Reference margin: one ``Stump.predict`` pass per boosting round.

        Kept as the plain-reading implementation the compiled scorer is
        validated against; O(rounds) row passes, so not for hot paths.
        """
        if not self.learners:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        # X is already float64 here, so feed each stump its column
        # directly: one cast for the whole call instead of one per round.
        margin = np.zeros(X.shape[0])
        for learner in self.learners:
            margin += learner.stump.predict_column(X[:, learner.stump.feature])
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Calibrated posterior probability ``P(y = +1 | x)`` per row."""
        if self.calibrator is None:
            raise RuntimeError("model was fitted without calibration")
        return self.calibrator.transform(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Hard labels in {-1, +1} by thresholding the margin."""
        return np.where(self.decision_function(X) >= threshold, 1.0, -1.0)

    def feature_importances(self) -> np.ndarray:
        """Total absolute score mass each feature contributes.

        For each selected stump, both block scores weigh in; features never
        selected get 0.  This powers Fig-9-style introspection of which line
        features drive an inference.
        """
        if self.n_features_ is None:
            raise RuntimeError("model is not fitted")
        importances = np.zeros(self.n_features_)
        for learner in self.learners:
            stump = learner.stump
            importances[stump.feature] += abs(stump.s_lo) + abs(stump.s_hi)
        return importances

    def explain(self, x: np.ndarray, top_k: int = 10) -> list[tuple[int, float]]:
        """Per-feature score contributions for a single example.

        Returns up to ``top_k`` (feature_index, contribution) pairs sorted
        by absolute contribution, mirroring the schematic in Fig. 9 where
        bottom-node feature ranges feed signed scores upward.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 1 or x.shape[0] != self.n_features_:
            raise ValueError(f"x must be 1-D with {self.n_features_} entries")
        contributions: dict[int, float] = {}
        for learner in self.learners:
            f = learner.stump.feature
            value = float(learner.stump.predict_column(x[f : f + 1])[0])
            contributions[learner.stump.feature] = (
                contributions.get(learner.stump.feature, 0.0) + value
            )
        ranked = sorted(contributions.items(), key=lambda kv: -abs(kv[1]))
        return ranked[:top_k]
