"""The serve-side score cache: ``(line, week, model_version)`` reads in O(1).

The steady state of the serving subsystem is read-heavy: many ``/score``,
``/locate`` and ``/explain`` lookups against the scores of one Saturday
campaign.  The :class:`~repro.serve.scoring.ScoringEngine` already keeps
a per-instance week cache, but every registry ``activate``/``rollback``
plus ``POST /reload`` replaces the engine -- and with it the cache -- so
the first read after any model event re-ran the full shard scan even when
the active version had not actually changed.

:class:`ScoreCache` is owned by the *service* and survives engine
reloads.  Entries are immutable week-level artefacts keyed by
``(kind, week, model_version)`` -- scored weeks, encoded base feature
sets, triage results -- and a per-line read indexes into the cached week
vector, so the effective key of a score lookup is
``(line, week, model_version)``.  Invalidation is event-driven: the
registry notifies its listeners on ``activate``/``rollback`` and the
service invalidates on ``reload``, each time keeping only entries of the
version that is (or is becoming) active; entries are version-pinned and
immutable, so keeping the surviving version's entries warm is always
correct.

Eviction is LRU over a bounded entry count; hit/miss/invalidation
counters land on the obs registry (``repro_serve_cache_*``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.obs.metrics import get_registry

__all__ = ["ScoreCache", "DEFAULT_CACHE_ENTRIES"]

#: Week-level entries kept (scores/features/triage each count as one);
#: a year of weekly campaigns for two versions fits comfortably.
DEFAULT_CACHE_ENTRIES = 256

_KINDS = ("scores", "features", "triage")


class ScoreCache:
    """LRU cache of immutable week-level serving artefacts."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, int, str], Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        metrics = get_registry()
        self._hits_total = metrics.counter(
            "repro_serve_cache_hits_total",
            "Score-cache hits, by entry kind",
        )
        self._misses_total = metrics.counter(
            "repro_serve_cache_misses_total",
            "Score-cache misses, by entry kind",
        )
        self._invalidations_total = metrics.counter(
            "repro_serve_cache_invalidations_total",
            "Entries dropped by cache invalidation, by reason",
        )
        self._entries_gauge = metrics.gauge(
            "repro_serve_cache_entries", "Live score-cache entries"
        )

    @staticmethod
    def _key(kind: str, week: int, version: str | None) -> tuple[str, int, str]:
        if kind not in _KINDS:
            raise ValueError(f"unknown cache kind {kind!r}")
        return (kind, int(week), str(version))

    # ----- generic access -------------------------------------------------

    def get(self, kind: str, week: int, version: str | None):
        """The cached entry, or None (counts a hit or a miss)."""
        key = self._key(kind, week, version)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
        if entry is not None:
            self._hits_total.inc(kind=kind)
        else:
            self._misses_total.inc(kind=kind)
        return entry

    def put(self, kind: str, week: int, version: str | None, entry) -> None:
        """Store an immutable week-level artefact (LRU-evicting)."""
        if entry is None:
            raise ValueError("cannot cache None")
        key = self._key(kind, week, version)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            size = len(self._entries)
        self._entries_gauge.set(size)

    def peek(self, kind: str, week: int, version: str | None) -> bool:
        """Whether an entry exists, without touching LRU order or counters."""
        with self._lock:
            return self._key(kind, week, version) in self._entries

    # ----- typed convenience ----------------------------------------------

    def score(self, line: int, week: int, version: str | None) -> float | None:
        """One line's cached calibrated score -- the (line, week, version)
        read path -- or None on a cache miss."""
        entry = self.get("scores", week, version)
        if entry is None:
            return None
        return float(entry.scores[line])

    # ----- invalidation ---------------------------------------------------

    def invalidate(self, reason: str, keep_version: str | None = None) -> int:
        """Drop entries made stale by a model event; returns the count.

        With ``keep_version`` given, entries of that version survive:
        versions are immutable once published, so scores computed under
        the surviving version stay exact.  Without it, everything goes.
        """
        with self._lock:
            if keep_version is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                keep = str(keep_version)
                stale = [k for k in self._entries if k[2] != keep]
                dropped = len(stale)
                for key in stale:
                    del self._entries[key]
            self._invalidations += dropped
            size = len(self._entries)
        if dropped:
            self._invalidations_total.inc(dropped, reason=reason)
        self._entries_gauge.set(size)
        return dropped

    # ----- introspection --------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/size numbers for benchmarks and ``/metrics`` readers."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "invalidated": self._invalidations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
