"""The line-week store: append-only columnar storage of weekly campaigns.

The paper's deployment (Fig. 3) separates *collection* -- every Saturday a
line-test campaign snapshots the Table-2 features of millions of lines --
from *scoring*, which may run on different machines and must never
re-simulate or re-measure.  This module is that boundary: a directory of
memory-mapped ``.npy`` shards plus a small JSON manifest, written once per
week and read back arbitrarily often.

Layout::

    store_root/
      manifest.json            # schema, population config, week index
      week_00012.npy           # (n_lines, 25) float32 line-test matrix
      tickets_00012.npy        # (n_lines,) int64 last-ticket-day vector

Per week the store holds the raw measurement matrix *and* the per-line
"most recent customer ticket day before this Saturday" vector, which is
the only ticket-log derivative the Table-3 encoder needs; together with
the population config (the simulated plant is rebuilt deterministically
from its seed) a stored week encodes to *bit-identical* features -- and
therefore bit-identical scores and dispatch lists -- as the in-memory
batch pipeline.  Shards are checksummed (SHA-256 of the raw bytes) and
verified on read, and the manifest is replaced atomically so a crashed
writer never corrupts the index.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.features.encoding import FeatureSet, LineFeatureEncoder
from repro.measurement.records import FEATURE_NAMES, N_FEATURES, MeasurementStore
from repro.netsim.population import Population, PopulationConfig, build_population

__all__ = ["LineWeekStore", "StoredWorld", "snapshot_result"]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


@dataclass(frozen=True)
class _WeekEntry:
    """One stored campaign, as indexed by the manifest."""

    week: int
    day: int
    measurements: str
    tickets: str
    measurements_checksum: str
    tickets_checksum: str


class LineWeekStore:
    """Append-only weekly snapshots of the line population.

    Create with :meth:`create`, reopen with :meth:`open`; both return a
    handle that can append further weeks (append-only: an existing week
    can never be rewritten).
    """

    def __init__(
        self,
        root: Path,
        n_lines: int,
        population: dict,
        entries: dict[int, _WeekEntry],
    ):
        self.root = root
        self.n_lines = n_lines
        self._population_config = population
        self._entries = entries

    # ----- lifecycle ------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | Path,
        n_lines: int,
        population: PopulationConfig,
    ) -> "LineWeekStore":
        """Initialise an empty store directory (must not already exist)."""
        root = Path(root)
        if (root / _MANIFEST).exists():
            raise FileExistsError(f"store already initialised at {root}")
        if n_lines <= 0:
            raise ValueError("n_lines must be positive")
        root.mkdir(parents=True, exist_ok=True)
        store = cls(root, n_lines, asdict(population), {})
        store._write_manifest()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "LineWeekStore":
        """Open an existing store and load its manifest."""
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no line-week store at {root}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported store format version: {version!r}")
        if manifest.get("feature_names") != list(FEATURE_NAMES):
            raise ValueError("store was written with a different feature schema")
        entries = {
            int(e["week"]): _WeekEntry(
                week=int(e["week"]),
                day=int(e["day"]),
                measurements=e["measurements"],
                tickets=e["tickets"],
                measurements_checksum=e["measurements_checksum"],
                tickets_checksum=e["tickets_checksum"],
            )
            for e in manifest["weeks"]
        }
        return cls(root, int(manifest["n_lines"]), manifest["population"], entries)

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": _FORMAT_VERSION,
            "n_lines": self.n_lines,
            "feature_names": list(FEATURE_NAMES),
            "population": self._population_config,
            "weeks": [
                {
                    "week": e.week,
                    "day": e.day,
                    "measurements": e.measurements,
                    "tickets": e.tickets,
                    "measurements_checksum": e.measurements_checksum,
                    "tickets_checksum": e.tickets_checksum,
                }
                for _, e in sorted(self._entries.items())
            ],
        }
        _atomic_write_text(self.root / _MANIFEST, json.dumps(manifest, indent=1))

    # ----- write path -----------------------------------------------------

    def append_week(
        self,
        week: int,
        day: int,
        features: np.ndarray,
        last_ticket_day: np.ndarray,
    ) -> None:
        """Append one Saturday campaign (refuses to rewrite a stored week).

        Args:
            week: week index of the campaign.
            day: absolute simulation day of the test (the Saturday).
            features: (n_lines, 25) measurement matrix; stored as float32.
            last_ticket_day: per-line day of the most recent customer
                ticket strictly before ``day`` (-1 when none), i.e.
                ``TicketLog.last_ticket_day_before(n_lines, day)``.
        """
        if week < 0:
            raise ValueError(f"week must be >= 0, got {week}")
        if week in self._entries:
            raise ValueError(f"week {week} is already stored (store is append-only)")
        features = np.ascontiguousarray(features, dtype=np.float32)
        if features.shape != (self.n_lines, N_FEATURES):
            raise ValueError(
                f"features must be ({self.n_lines}, {N_FEATURES}), "
                f"got {features.shape}"
            )
        last_ticket_day = np.ascontiguousarray(last_ticket_day, dtype=np.int64)
        if last_ticket_day.shape != (self.n_lines,):
            raise ValueError(
                f"last_ticket_day must be ({self.n_lines},), "
                f"got {last_ticket_day.shape}"
            )
        meas_name = f"week_{week:05d}.npy"
        tick_name = f"tickets_{week:05d}.npy"
        np.save(self.root / meas_name, features)
        np.save(self.root / tick_name, last_ticket_day)
        self._entries[week] = _WeekEntry(
            week=week,
            day=int(day),
            measurements=meas_name,
            tickets=tick_name,
            measurements_checksum=_sha256(features.tobytes()),
            tickets_checksum=_sha256(last_ticket_day.tobytes()),
        )
        self._write_manifest()

    # ----- read path ------------------------------------------------------

    @property
    def weeks(self) -> list[int]:
        """Stored week indices, ascending."""
        return sorted(self._entries)

    @property
    def latest_week(self) -> int:
        """The most recent stored week (-1 when empty)."""
        return max(self._entries) if self._entries else -1

    def day_of(self, week: int) -> int:
        """Absolute Saturday day of a stored week."""
        return self._entry(week).day

    def _entry(self, week: int) -> _WeekEntry:
        try:
            return self._entries[week]
        except KeyError:
            raise KeyError(f"week {week} is not in the store") from None

    def _load(self, name: str, checksum: str, mmap: bool) -> np.ndarray:
        path = self.root / name
        array = np.load(path, mmap_mode="r" if mmap else None)
        if not mmap and _sha256(np.ascontiguousarray(array).tobytes()) != checksum:
            raise ValueError(f"shard {name} is corrupted (checksum mismatch)")
        return array

    def week_matrix(self, week: int, mmap: bool = True) -> np.ndarray:
        """(n_lines, 25) float32 measurement matrix of a stored week.

        Memory-mapped by default; pass ``mmap=False`` for an in-memory
        copy with checksum verification.
        """
        entry = self._entry(week)
        return self._load(entry.measurements, entry.measurements_checksum, mmap)

    def last_ticket_day(self, week: int, mmap: bool = True) -> np.ndarray:
        """(n_lines,) last-customer-ticket-day vector of a stored week."""
        entry = self._entry(week)
        return self._load(entry.tickets, entry.tickets_checksum, mmap)

    def verify(self) -> None:
        """Re-hash every shard against the manifest; raises on mismatch."""
        for week in self.weeks:
            self.week_matrix(week, mmap=False)
            self.last_ticket_day(week, mmap=False)

    def population_config(self) -> PopulationConfig:
        """The plant's population configuration as written at creation."""
        return PopulationConfig(**self._population_config)


class _StoredTicketView:
    """The one ticket-log query the encoder makes, served from a shard."""

    def __init__(self, last_day: np.ndarray, day: int):
        self._last_day = last_day
        self._day = day

    def last_ticket_day_before(self, n_lines: int, day: int) -> np.ndarray:
        if n_lines != self._last_day.shape[0]:
            raise ValueError(
                f"stored ticket vector covers {self._last_day.shape[0]} lines, "
                f"caller asked for {n_lines}"
            )
        if day != self._day:
            raise ValueError(
                f"stored ticket vector was snapshotted for day {self._day}, "
                f"caller asked for day {day}"
            )
        return np.asarray(self._last_day)


class StoredWorld:
    """Encoder-compatible views over a :class:`LineWeekStore`.

    Rebuilds the population deterministically from the stored config and
    assembles a :class:`MeasurementStore` from the week shards, so
    :meth:`encode_week` produces feature matrices bit-identical to
    encoding the live simulation the snapshots came from.
    """

    def __init__(self, store: LineWeekStore):
        self.store = store
        self._population: Population | None = None
        self._measurements: MeasurementStore | None = None
        self._measured_weeks: tuple[int, ...] = ()

    @property
    def n_lines(self) -> int:
        return self.store.n_lines

    def refresh(self) -> None:
        """Re-read the manifest (picks up weeks appended by a writer)."""
        self.store = LineWeekStore.open(self.store.root)
        self._measurements = None
        self._measured_weeks = ()

    def population(self) -> Population:
        """The plant population, rebuilt from the stored seed (cached)."""
        if self._population is None:
            self._population = build_population(self.store.population_config())
        return self._population

    def measurements(self) -> MeasurementStore:
        """All stored weeks assembled into a MeasurementStore (cached)."""
        weeks = tuple(self.store.weeks)
        if self._measurements is None or self._measured_weeks != weeks:
            if not weeks:
                raise ValueError("the store holds no weeks yet")
            assembled = MeasurementStore(
                n_lines=self.store.n_lines, n_weeks=max(weeks) + 1
            )
            for week in weeks:
                assembled.add_week(
                    week, self.store.day_of(week), self.store.week_matrix(week)
                )
            self._measurements = assembled
            self._measured_weeks = weeks
        return self._measurements

    def encode_week(self, week: int, encoder: LineFeatureEncoder) -> FeatureSet:
        """Table-3 base features for every line at a stored week."""
        ticket_view = _StoredTicketView(
            self.store.last_ticket_day(week), self.store.day_of(week)
        )
        return encoder.encode(
            self.measurements(), week, self.population(), ticket_view
        )


def snapshot_result(result, root: str | Path) -> LineWeekStore:
    """Write every recorded week of a simulation result into a store.

    Creates the store when ``root`` is empty, otherwise appends only the
    weeks not yet present.  Used by the ``repro snapshot`` CLI and the
    pipeline's persistence hook-free batch export.
    """
    root = Path(root)
    if (root / _MANIFEST).exists():
        store = LineWeekStore.open(root)
        if store.n_lines != result.n_lines:
            raise ValueError(
                f"store covers {store.n_lines} lines, result has {result.n_lines}"
            )
    else:
        store = LineWeekStore.create(
            root, result.n_lines, result.config.population
        )
    measurements = result.measurements
    for week in measurements.filled_weeks:
        week = int(week)
        if week in store._entries:
            continue
        day = int(measurements.saturday_day[week])
        store.append_week(
            week,
            day,
            measurements.week_matrix(week),
            result.ticket_log.last_ticket_day_before(result.n_lines, day),
        )
    return store
