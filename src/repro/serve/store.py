"""The line-week store: append-only columnar storage of weekly campaigns.

The paper's deployment (Fig. 3) separates *collection* -- every Saturday a
line-test campaign snapshots the Table-2 features of millions of lines --
from *scoring*, which may run on different machines and must never
re-simulate or re-measure.  This module is that boundary: a directory of
memory-mapped ``.npy`` shards plus a small JSON manifest, written once per
week and read back arbitrarily often.

Layout::

    store_root/
      manifest.json            # schema, population config, week index
      week_00012.npy           # (n_lines, 25) float32 line-test matrix
      tickets_00012.npy        # (n_lines,) int64 last-ticket-day vector

Per week the store holds the raw measurement matrix *and* the per-line
"most recent customer ticket day before this Saturday" vector, which is
the only ticket-log derivative the Table-3 encoder needs; together with
the population config (the simulated plant is rebuilt deterministically
from its seed) a stored week encodes to *bit-identical* features -- and
therefore bit-identical scores and dispatch lists -- as the in-memory
batch pipeline.  Shards are checksummed (SHA-256 of the raw bytes) and
verified on read, and the manifest is replaced atomically so a crashed
writer never corrupts the index.

Two write paths share one incremental shard writer: :meth:`append_week`
takes a whole week in memory, :meth:`append_week_chunks` drains the
streaming simulator's per-chunk blocks so a million-line week is written
without ever existing as one array.  Both fsync every shard before the
manifest entry that references it is published -- the manifest is the
commit point, so a crash between data and index can truncate unpublished
files but never leave the index pointing at torn bytes.  Chunked and
whole-week appends produce byte-identical ``.npy`` files and checksums.

On the read side, :meth:`LineWeekStore.read_rows` serves contiguous row
ranges straight from disk offsets (no mmap, so touched pages never
accumulate in RSS), and :class:`StoredWorld` switches to an out-of-core
mode -- automatically past :data:`DENSE_LINE_WEEK_BUDGET` line-weeks --
where scoring shards and chunked encodes read only their own rows
instead of assembling the full ``(n_lines, n_weeks, 25)`` cube.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np
from numpy.lib import format as _npy_format

from repro.features.encoding import FeatureSet, LineFeatureEncoder
from repro.measurement.records import FEATURE_NAMES, N_FEATURES, MeasurementStore
from repro.netsim.population import Population, PopulationConfig, build_population
from repro.parallel import split_shards

__all__ = [
    "LineWeekStore",
    "StoredWorld",
    "snapshot_result",
    "DENSE_LINE_WEEK_BUDGET",
    "DEFAULT_ENCODE_CHUNK",
]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1

#: Above this many line-weeks (lines x stored weeks), :class:`StoredWorld`
#: defaults to out-of-core reads instead of assembling the dense cube --
#: 4M line-weeks is a ~400 MB float32 cube, about the most a "just load
#: it" path should silently allocate.
DENSE_LINE_WEEK_BUDGET = 4_000_000

#: Default row-chunk of the out-of-core :meth:`StoredWorld.encode_week`.
DEFAULT_ENCODE_CHUNK = 65_536


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class _ShardWriter:
    """Incremental ``.npy`` writer, byte-identical to ``np.save``.

    The final shape is known up front, so the v1.0 header is written
    first and row chunks are appended sequentially while a running
    SHA-256 accumulates over the data bytes (the store's checksums cover
    data only, matching ``_sha256(array.tobytes())`` on the whole-array
    path).  ``close`` refuses an incomplete shard, fsyncs, and returns
    the checksum -- callers publish the manifest entry only after that.
    """

    def __init__(self, path: Path, shape: tuple[int, ...], dtype) -> None:
        self.path = path
        self._dtype = np.dtype(dtype)
        self._row_shape = tuple(shape[1:])
        self._total_rows = int(shape[0])
        self._rows = 0
        self._hash = hashlib.sha256()
        self._fh = open(path, "wb")
        _npy_format.write_array_header_1_0(
            self._fh,
            {
                "descr": _npy_format.dtype_to_descr(self._dtype),
                "fortran_order": False,
                "shape": tuple(shape),
            },
        )

    @property
    def rows_written(self) -> int:
        return self._rows

    def write(self, chunk: np.ndarray) -> None:
        chunk = np.ascontiguousarray(chunk, dtype=self._dtype)
        if tuple(chunk.shape[1:]) != self._row_shape:
            raise ValueError(
                f"chunk rows must have shape {self._row_shape}, "
                f"got {tuple(chunk.shape[1:])}"
            )
        if self._rows + chunk.shape[0] > self._total_rows:
            raise ValueError(
                f"shard {self.path.name} overflows: "
                f"{self._rows} + {chunk.shape[0]} > {self._total_rows} rows"
            )
        data = chunk.tobytes()
        self._fh.write(data)
        self._hash.update(data)
        self._rows += chunk.shape[0]

    def close(self) -> str:
        """Fsync and return the hex checksum; raises if rows are missing."""
        if self._rows != self._total_rows:
            self._fh.close()
            raise ValueError(
                f"shard {self.path.name} is incomplete: "
                f"{self._rows} of {self._total_rows} rows written"
            )
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        return self._hash.hexdigest()

    def abort(self) -> None:
        if not self._fh.closed:
            self._fh.close()


@dataclass(frozen=True)
class _WeekEntry:
    """One stored campaign, as indexed by the manifest."""

    week: int
    day: int
    measurements: str
    tickets: str
    measurements_checksum: str
    tickets_checksum: str


class LineWeekStore:
    """Append-only weekly snapshots of the line population.

    Create with :meth:`create`, reopen with :meth:`open`; both return a
    handle that can append further weeks (append-only: an existing week
    can never be rewritten).
    """

    def __init__(
        self,
        root: Path,
        n_lines: int,
        population: dict,
        entries: dict[int, _WeekEntry],
    ):
        self.root = root
        self.n_lines = n_lines
        self._population_config = population
        self._entries = entries
        self._layouts: dict[str, tuple[tuple[int, ...], np.dtype, int]] = {}

    # ----- lifecycle ------------------------------------------------------

    @classmethod
    def create(
        cls,
        root: str | Path,
        n_lines: int,
        population: PopulationConfig,
    ) -> "LineWeekStore":
        """Initialise an empty store directory (must not already exist)."""
        root = Path(root)
        if (root / _MANIFEST).exists():
            raise FileExistsError(f"store already initialised at {root}")
        if n_lines <= 0:
            raise ValueError("n_lines must be positive")
        root.mkdir(parents=True, exist_ok=True)
        store = cls(root, n_lines, asdict(population), {})
        store._write_manifest()
        return store

    @classmethod
    def open(cls, root: str | Path) -> "LineWeekStore":
        """Open an existing store and load its manifest."""
        root = Path(root)
        manifest_path = root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no line-week store at {root}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported store format version: {version!r}")
        if manifest.get("feature_names") != list(FEATURE_NAMES):
            raise ValueError("store was written with a different feature schema")
        entries = {
            int(e["week"]): _WeekEntry(
                week=int(e["week"]),
                day=int(e["day"]),
                measurements=e["measurements"],
                tickets=e["tickets"],
                measurements_checksum=e["measurements_checksum"],
                tickets_checksum=e["tickets_checksum"],
            )
            for e in manifest["weeks"]
        }
        return cls(root, int(manifest["n_lines"]), manifest["population"], entries)

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": _FORMAT_VERSION,
            "n_lines": self.n_lines,
            "feature_names": list(FEATURE_NAMES),
            "population": self._population_config,
            "weeks": [
                {
                    "week": e.week,
                    "day": e.day,
                    "measurements": e.measurements,
                    "tickets": e.tickets,
                    "measurements_checksum": e.measurements_checksum,
                    "tickets_checksum": e.tickets_checksum,
                }
                for _, e in sorted(self._entries.items())
            ],
        }
        _atomic_write_text(self.root / _MANIFEST, json.dumps(manifest, indent=1))

    # ----- write path -----------------------------------------------------

    def append_week(
        self,
        week: int,
        day: int,
        features: np.ndarray,
        last_ticket_day: np.ndarray,
    ) -> None:
        """Append one Saturday campaign (refuses to rewrite a stored week).

        Args:
            week: week index of the campaign.
            day: absolute simulation day of the test (the Saturday).
            features: (n_lines, 25) measurement matrix; stored as float32.
            last_ticket_day: per-line day of the most recent customer
                ticket strictly before ``day`` (-1 when none), i.e.
                ``TicketLog.last_ticket_day_before(n_lines, day)``.
        """
        if week < 0:
            raise ValueError(f"week must be >= 0, got {week}")
        if week in self._entries:
            raise ValueError(f"week {week} is already stored (store is append-only)")
        features = np.ascontiguousarray(features, dtype=np.float32)
        if features.shape != (self.n_lines, N_FEATURES):
            raise ValueError(
                f"features must be ({self.n_lines}, {N_FEATURES}), "
                f"got {features.shape}"
            )
        last_ticket_day = np.ascontiguousarray(last_ticket_day, dtype=np.int64)
        if last_ticket_day.shape != (self.n_lines,):
            raise ValueError(
                f"last_ticket_day must be ({self.n_lines},), "
                f"got {last_ticket_day.shape}"
            )
        meas, tick = self._week_writers(week)
        meas.write(features)
        tick.write(last_ticket_day)
        # Shards are durable (fsynced by close) before the manifest entry
        # that references them is published.
        self._publish_week(week, day, meas, tick)
        self._write_manifest()

    def append_week_chunks(self, blocks) -> list[int]:
        """Append one or more weeks incrementally from streamed chunks.

        Drains an iterable of chunk payloads -- anything shaped like the
        streaming simulator's :class:`~repro.netsim.streaming.WeekBlock`
        (attributes ``week``, ``day``, ``start``, ``stop``, ``features``,
        ``last_ticket_day``) -- writing each week's shards as rows
        arrive, so no week is ever held in memory whole.  Per week the
        chunks must cover ``[0, n_lines)`` contiguously and in order;
        different weeks may interleave arbitrarily (the streaming engine
        emits chunk-major).

        Same guarantees as :meth:`append_week`: shards are fsynced before
        the manifest references them, checksums and file bytes are
        identical to a whole-week append of the concatenated rows, and
        the manifest -- published once, after every started week
        completed -- is the commit point: a crash mid-stream leaves the
        store exactly as it was.

        Returns the sorted list of week indices appended.
        """
        pending: dict[int, tuple[int, _ShardWriter, _ShardWriter]] = {}
        try:
            for block in blocks:
                week = int(block.week)
                start, stop = int(block.start), int(block.stop)
                state = pending.get(week)
                if state is None:
                    if week < 0:
                        raise ValueError(f"week must be >= 0, got {week}")
                    if week in self._entries:
                        raise ValueError(
                            f"week {week} is already stored "
                            f"(store is append-only)"
                        )
                    meas, tick = self._week_writers(week)
                    state = pending[week] = (int(block.day), meas, tick)
                day, meas, tick = state
                if int(block.day) != day:
                    raise ValueError(
                        f"week {week} chunks disagree on the campaign day: "
                        f"{day} vs {int(block.day)}"
                    )
                if start != meas.rows_written:
                    raise ValueError(
                        f"week {week} chunks must arrive in row order: "
                        f"expected start {meas.rows_written}, got {start}"
                    )
                features = np.asarray(block.features)
                tickets = np.asarray(block.last_ticket_day)
                if features.shape[0] != stop - start or \
                        tickets.shape[0] != stop - start:
                    raise ValueError(
                        f"week {week} chunk [{start}, {stop}) carries "
                        f"{features.shape[0]} feature rows and "
                        f"{tickets.shape[0]} ticket rows"
                    )
                meas.write(features)
                tick.write(tickets)
        except BaseException:
            for _, meas, tick in pending.values():
                meas.abort()
                tick.abort()
            raise
        for week in sorted(pending):
            day, meas, tick = pending[week]
            self._publish_week(week, day, meas, tick)
        if pending:
            self._write_manifest()
        return sorted(pending)

    def _week_writers(self, week: int) -> tuple[_ShardWriter, _ShardWriter]:
        meas = _ShardWriter(
            self.root / f"week_{week:05d}.npy",
            (self.n_lines, N_FEATURES), np.float32,
        )
        tick = _ShardWriter(
            self.root / f"tickets_{week:05d}.npy",
            (self.n_lines,), np.int64,
        )
        return meas, tick

    def _publish_week(
        self, week: int, day: int, meas: _ShardWriter, tick: _ShardWriter
    ) -> None:
        """Close (fsync) both shards and index the week -- not yet durable
        until the caller rewrites the manifest."""
        self._entries[week] = _WeekEntry(
            week=week,
            day=int(day),
            measurements=meas.path.name,
            tickets=tick.path.name,
            measurements_checksum=meas.close(),
            tickets_checksum=tick.close(),
        )

    # ----- read path ------------------------------------------------------

    @property
    def weeks(self) -> list[int]:
        """Stored week indices, ascending."""
        return sorted(self._entries)

    @property
    def latest_week(self) -> int:
        """The most recent stored week (-1 when empty)."""
        return max(self._entries) if self._entries else -1

    def day_of(self, week: int) -> int:
        """Absolute Saturday day of a stored week."""
        return self._entry(week).day

    def _entry(self, week: int) -> _WeekEntry:
        try:
            return self._entries[week]
        except KeyError:
            raise KeyError(f"week {week} is not in the store") from None

    def _load(self, name: str, checksum: str, mmap: bool) -> np.ndarray:
        path = self.root / name
        array = np.load(path, mmap_mode="r" if mmap else None)
        if not mmap and _sha256(np.ascontiguousarray(array).tobytes()) != checksum:
            raise ValueError(f"shard {name} is corrupted (checksum mismatch)")
        return array

    def week_matrix(self, week: int, mmap: bool = True) -> np.ndarray:
        """(n_lines, 25) float32 measurement matrix of a stored week.

        Memory-mapped by default; pass ``mmap=False`` for an in-memory
        copy with checksum verification.
        """
        entry = self._entry(week)
        return self._load(entry.measurements, entry.measurements_checksum, mmap)

    def last_ticket_day(self, week: int, mmap: bool = True) -> np.ndarray:
        """(n_lines,) last-customer-ticket-day vector of a stored week."""
        entry = self._entry(week)
        return self._load(entry.tickets, entry.tickets_checksum, mmap)

    def _shard_layout(self, name: str) -> tuple[tuple[int, ...], np.dtype, int]:
        """(shape, dtype, data byte offset) of a shard, header parsed once."""
        layout = self._layouts.get(name)
        if layout is None:
            with open(self.root / name, "rb") as fh:
                version = _npy_format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = _npy_format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, fortran, dtype = _npy_format.read_array_header_2_0(fh)
                else:
                    raise ValueError(
                        f"shard {name} has unsupported npy version {version}"
                    )
                if fortran:
                    raise ValueError(f"shard {name} is Fortran-ordered")
                layout = (tuple(shape), dtype, fh.tell())
            self._layouts[name] = layout
        return layout

    def _read_rows(self, name: str, start: int, stop: int) -> np.ndarray:
        shape, dtype, offset = self._shard_layout(name)
        if not 0 <= start <= stop <= shape[0]:
            raise ValueError(
                f"row range [{start}, {stop}) outside shard of {shape[0]} rows"
            )
        row_items = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
        row_bytes = row_items * dtype.itemsize
        with open(self.root / name, "rb") as fh:
            fh.seek(offset + start * row_bytes)
            buf = fh.read((stop - start) * row_bytes)
        if len(buf) != (stop - start) * row_bytes:
            raise ValueError(f"shard {name} is truncated")
        return np.frombuffer(buf, dtype=dtype).reshape(
            (stop - start,) + tuple(shape[1:])
        )

    def read_rows(self, week: int, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of a week's measurement matrix.

        A direct positioned read of exactly the requested byte range --
        no mmap, so out-of-core scoring never accumulates touched pages
        in resident memory.  Returns a fresh ``(stop - start, 25)``
        float32 array equal to ``week_matrix(week)[start:stop]``.
        """
        return self._read_rows(self._entry(week).measurements, start, stop)

    def read_ticket_rows(self, week: int, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of a week's last-ticket-day vector."""
        return self._read_rows(self._entry(week).tickets, start, stop)

    def verify(self) -> None:
        """Re-hash every shard against the manifest; raises on mismatch."""
        for week in self.weeks:
            self.week_matrix(week, mmap=False)
            self.last_ticket_day(week, mmap=False)

    def population_config(self) -> PopulationConfig:
        """The plant's population configuration as written at creation."""
        return PopulationConfig(**self._population_config)


class _StoredTicketView:
    """The one ticket-log query the encoder makes, served from a shard."""

    def __init__(self, last_day: np.ndarray, day: int):
        self._last_day = last_day
        self._day = day

    def last_ticket_day_before(self, n_lines: int, day: int) -> np.ndarray:
        if n_lines != self._last_day.shape[0]:
            raise ValueError(
                f"stored ticket vector covers {self._last_day.shape[0]} lines, "
                f"caller asked for {n_lines}"
            )
        if day != self._day:
            raise ValueError(
                f"stored ticket vector was snapshotted for day {self._day}, "
                f"caller asked for day {day}"
            )
        return np.asarray(self._last_day)


def _measurement_row_view(full: MeasurementStore, shard: slice) -> MeasurementStore:
    """A zero-copy row view of a dense measurement store.

    Built without ``__init__`` so ``data`` stays a slice view of the full
    array instead of a fresh allocation; every MeasurementStore method
    reduces along the week/feature axes per line, so the view behaves
    exactly like the full store restricted to these rows.
    """
    view = object.__new__(MeasurementStore)
    view.data = full.data[shard]
    view.n_lines = view.data.shape[0]
    view.n_weeks = full.n_weeks
    view.saturday_day = full.saturday_day
    view._filled = full._filled
    return view


def _population_row_view(full: Population, shard: slice) -> Population:
    """A zero-copy row view of the population's per-line arrays."""
    view = object.__new__(Population)
    view.config = full.config
    view.topology = full.topology  # not per-line; unused by the encoder
    view.loop_kft = full.loop_kft[shard]
    view.profile_idx = full.profile_idx[shard]
    view.ambient_noise_db = full.ambient_noise_db[shard]
    view.static_bridge_tap = full.static_bridge_tap[shard]
    view.static_crosstalk = full.static_crosstalk[shard]
    return view


class StoredWorld:
    """Encoder-compatible views over a :class:`LineWeekStore`.

    Rebuilds the population deterministically from the stored config and
    serves :class:`MeasurementStore` views over the week shards, so
    :meth:`encode_week` produces feature matrices bit-identical to
    encoding the live simulation the snapshots came from.

    Two residency modes, one contract.  In **dense** mode every stored
    week is assembled into one in-memory cube (cached) and shards are
    zero-copy views of it.  In **out-of-core** mode -- forced with
    ``out_of_core=True``, or automatic once ``lines x weeks`` exceeds
    :data:`DENSE_LINE_WEEK_BUDGET` -- :meth:`shard_measurements` reads
    only its own rows from disk, so peak memory is bounded by the shard
    size, not the plant.  Both modes yield bit-identical rows (the store
    rows are the same bytes), so scoring results do not depend on the
    mode.
    """

    def __init__(
        self, store: LineWeekStore, out_of_core: bool | None = None
    ):
        self.store = store
        self.out_of_core = out_of_core
        self._population: Population | None = None
        self._measurements: MeasurementStore | None = None
        self._measured_weeks: tuple[int, ...] = ()

    @property
    def n_lines(self) -> int:
        return self.store.n_lines

    def refresh(self) -> None:
        """Re-read the manifest (picks up weeks appended by a writer)."""
        self.store = LineWeekStore.open(self.store.root)
        self._measurements = None
        self._measured_weeks = ()

    def population(self) -> Population:
        """The plant population, rebuilt from the stored seed (cached)."""
        if self._population is None:
            self._population = build_population(self.store.population_config())
        return self._population

    def out_of_core_active(self) -> bool:
        """Whether shard reads bypass the dense in-memory cube."""
        if self.out_of_core is not None:
            return self.out_of_core
        weeks = self.store.weeks
        if not weeks:
            return False
        return self.store.n_lines * (max(weeks) + 1) > DENSE_LINE_WEEK_BUDGET

    def measurements(self) -> MeasurementStore:
        """All stored weeks assembled into a MeasurementStore (cached).

        This is the dense cube; out-of-core consumers should use
        :meth:`shard_measurements` instead.
        """
        weeks = tuple(self.store.weeks)
        if self._measurements is None or self._measured_weeks != weeks:
            if not weeks:
                raise ValueError("the store holds no weeks yet")
            assembled = MeasurementStore(
                n_lines=self.store.n_lines, n_weeks=max(weeks) + 1
            )
            for week in weeks:
                assembled.add_week(
                    week, self.store.day_of(week), self.store.week_matrix(week)
                )
            self._measurements = assembled
            self._measured_weeks = weeks
        return self._measurements

    def shard_measurements(self, shard: slice) -> MeasurementStore:
        """A measurement view covering only the rows of ``shard``.

        Dense mode returns a zero-copy view of the cached cube;
        out-of-core mode reads exactly the shard's rows of every stored
        week from disk (positioned reads, no mmap), so concurrent scoring
        shards never materialise more than their own slice.
        """
        if not self.out_of_core_active():
            return _measurement_row_view(self.measurements(), shard)
        weeks = self.store.weeks
        if not weeks:
            raise ValueError("the store holds no weeks yet")
        start, stop, step = shard.indices(self.store.n_lines)
        if step != 1:
            raise ValueError("shards must be contiguous row ranges")
        if stop <= start:
            raise ValueError(f"empty shard [{start}, {stop})")
        assembled = MeasurementStore(
            n_lines=stop - start, n_weeks=max(weeks) + 1
        )
        for week in weeks:
            assembled.add_week(
                week, self.store.day_of(week),
                self.store.read_rows(week, start, stop),
            )
        return assembled

    def iter_encode_week(
        self,
        week: int,
        encoder: LineFeatureEncoder,
        chunk_lines: int | None = None,
    ):
        """Yield ``(shard, FeatureSet)`` per row chunk of a stored week.

        The streaming form of :meth:`encode_week`: each chunk's encoded
        features are yielded and released, so a consumer that processes
        chunks independently (scoring, export) never holds the full
        base-feature matrix -- at paper scale that matrix is several
        times larger than a week of raw measurements.
        """
        if chunk_lines is not None and chunk_lines < 1:
            raise ValueError(f"chunk_lines must be >= 1, got {chunk_lines}")
        day = self.store.day_of(week)
        chunk = chunk_lines or DEFAULT_ENCODE_CHUNK
        population = self.population()
        last_day = np.asarray(self.store.last_ticket_day(week))
        for shard in split_shards(self.store.n_lines, chunk):
            yield shard, encoder.encode(
                self.shard_measurements(shard),
                week,
                _population_row_view(population, shard),
                _StoredTicketView(last_day[shard], day),
            )

    def encode_week(
        self,
        week: int,
        encoder: LineFeatureEncoder,
        chunk_lines: int | None = None,
    ) -> FeatureSet:
        """Table-3 base features for every line at a stored week.

        Dense worlds encode in one pass over the cached cube.  Out-of-
        core worlds (or an explicit ``chunk_lines``) encode row chunks
        independently into a preallocated output -- every encoder
        operation is row-wise, so the chunked matrix is bit-identical to
        the one-pass encode while never loading the full week matrix
        (and never holding two copies of the encoded one).
        """
        if chunk_lines is None and not self.out_of_core_active():
            day = self.store.day_of(week)
            ticket_view = _StoredTicketView(
                self.store.last_ticket_day(week), day
            )
            return encoder.encode(
                self.measurements(), week, self.population(), ticket_view
            )
        matrix: np.ndarray | None = None
        first: FeatureSet | None = None
        for shard, piece in self.iter_encode_week(week, encoder, chunk_lines):
            if first is None:
                first = piece
                if shard.stop >= self.store.n_lines:
                    return piece  # single chunk covers the plant
                matrix = np.empty(
                    (self.store.n_lines, piece.matrix.shape[1]),
                    dtype=piece.matrix.dtype,
                )
            matrix[shard] = piece.matrix
        if first is None:
            raise ValueError("the store holds no lines to encode")
        return FeatureSet(
            matrix=matrix,
            names=first.names,
            groups=first.groups,
            categorical=first.categorical,
        )


def snapshot_result(result, root: str | Path) -> LineWeekStore:
    """Write every recorded week of a simulation result into a store.

    Creates the store when ``root`` is empty, otherwise appends only the
    weeks not yet present.  Used by the ``repro snapshot`` CLI and the
    pipeline's persistence hook-free batch export.
    """
    root = Path(root)
    if (root / _MANIFEST).exists():
        store = LineWeekStore.open(root)
        if store.n_lines != result.n_lines:
            raise ValueError(
                f"store covers {store.n_lines} lines, result has {result.n_lines}"
            )
    else:
        store = LineWeekStore.create(
            root, result.n_lines, result.config.population
        )
    measurements = result.measurements
    for week in measurements.filled_weeks:
        week = int(week)
        if week in store._entries:
            continue
        day = int(measurements.saturday_day[week])
        store.append_week(
            week,
            day,
            measurements.week_matrix(week),
            result.ticket_log.last_ticket_day_before(result.n_lines, day),
        )
    return store
