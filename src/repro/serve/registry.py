"""The model registry: versioned, checksummed on-disk model bundles.

The operational loop (Fig. 3) retrains weekly-or-less but scores every
Saturday; the model that scores must be *pinned* -- a known version with
a verified checksum -- and a bad rollout must be reversible before the
next campaign.  A registry is a directory of immutable version bundles
plus a manifest naming the active one::

    registry_root/
      MANIFEST.json            # versions, checksums, active, history
      v0001/bundle.json        # predictor (+ optional locator) payload
      v0002/bundle.json

A *bundle* is the full serving unit: the ticket predictor (feature
recipes + encoder spec + BStump + Platt calibrator, via
``TicketPredictor.to_dict``), optionally the Section-6 combined trouble
locator, and free-form metadata (training week, population size, ...).
Bundles are immutable once published; ``activate``/``rollback`` only move
the manifest pointer.  Every load verifies the bundle checksum, and the
loaded predictor's ensemble arrives pre-compiled
(:mod:`repro.ml.serialize` compiles on load), so serving starts at full
scoring speed with margins bit-identical to the trainer's.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.predictor import TicketPredictor
from repro.ml.serialize import (
    combined_locator_from_dict,
    combined_locator_to_dict,
    payload_checksum,
)
from repro.obs.log import get_logger, kv

__all__ = ["ModelBundle", "ModelRegistry", "RegistryError"]


class RegistryError(RuntimeError):
    """An invalid registry operation (e.g. rollback with no predecessor)."""

LOG = get_logger("serve.registry")

_MANIFEST = "MANIFEST.json"
_BUNDLE = "bundle.json"
_FORMAT_VERSION = 1


@dataclass
class ModelBundle:
    """Everything one registry version serves.

    Attributes:
        predictor: a fitted ticket predictor (model + recipes + encoder).
        locator: optional fitted combined trouble locator.
        meta: free-form JSON metadata (trained week, lines, notes...).
    """

    predictor: TicketPredictor
    locator: Any | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "format_version": _FORMAT_VERSION,
            "predictor": self.predictor.to_dict(),
            "locator": (
                combined_locator_to_dict(self.locator)
                if self.locator is not None
                else None
            ),
            "meta": self.meta,
        }
        payload["checksum"] = payload_checksum(payload)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModelBundle":
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported bundle format version: {version!r}")
        stored = payload.get("checksum")
        if stored is not None and stored != payload_checksum(payload):
            raise ValueError("bundle checksum mismatch (corrupted or edited)")
        locator_payload = payload.get("locator")
        return cls(
            predictor=TicketPredictor.from_dict(payload["predictor"]),
            locator=(
                combined_locator_from_dict(locator_payload)
                if locator_payload is not None
                else None
            ),
            meta=dict(payload.get("meta", {})),
        )


def _atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class ModelRegistry:
    """Versioned bundle storage with activate/rollback semantics."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # In-process observers of activation changes (e.g. the serving
        # cache); not persisted -- each registry instance has its own.
        self._listeners: list = []
        manifest_path = self.root / _MANIFEST
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text())
            version = manifest.get("format_version")
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported registry format version: {version!r}"
                )
            self._versions: dict[str, dict[str, Any]] = manifest["versions"]
            self._active: str | None = manifest["active"]
            self._history: list[str] = list(manifest.get("history", []))
            self._events: list[dict[str, Any]] = list(manifest.get("events", []))
        else:
            self._versions = {}
            self._active = None
            self._history = []
            self._events = []
            self._write_manifest()

    # ----- manifest -------------------------------------------------------

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": _FORMAT_VERSION,
            "active": self._active,
            "history": self._history,
            "events": self._events,
            "versions": self._versions,
        }
        _atomic_write_text(self.root / _MANIFEST, json.dumps(manifest, indent=1))

    def _record_event(self, action: str, **details: Any) -> None:
        """Append one lifecycle event to the manifest's audit trail.

        The caller is responsible for the following ``_write_manifest``;
        events and the state change they describe land atomically.
        """
        self._events.append({"action": action, "at": time.time(), **details})

    # ----- activation listeners -------------------------------------------

    def add_listener(self, listener) -> None:
        """Register ``listener(action, version)`` for activation changes.

        Called after every ``activate`` and ``rollback`` with the action
        name and the now-active version, so serving-side caches can
        invalidate the moment the active model moves.  Listeners are
        in-process only and must not raise.
        """
        self._listeners.append(listener)

    def _notify(self, action: str, version: str | None) -> None:
        for listener in self._listeners:
            listener(action, version)

    # ----- write path -----------------------------------------------------

    def publish(self, bundle: ModelBundle, activate: bool = False) -> str:
        """Write a bundle as the next version; optionally activate it.

        Returns the new version tag (``v0001``, ``v0002``, ...).
        """
        version = f"v{len(self._versions) + 1:04d}"
        payload = bundle.to_dict()
        version_dir = self.root / version
        version_dir.mkdir(parents=True, exist_ok=False)
        _atomic_write_text(version_dir / _BUNDLE, json.dumps(payload))
        self._versions[version] = {
            "checksum": payload["checksum"],
            "published_at": time.time(),
            "meta": bundle.meta,
        }
        self._record_event("publish", version=version)
        self._write_manifest()
        LOG.info(kv(
            "registry.publish",
            version=version,
            checksum=payload["checksum"][:12],
            activate=activate,
        ))
        if activate:
            self.activate(version)
        return version

    def activate(self, version: str) -> None:
        """Point serving at ``version`` (records the previous for rollback)."""
        if version not in self._versions:
            raise KeyError(f"unknown model version {version!r}")
        if version == self._active:
            return
        previous = self._active
        self._history.append(version)
        self._active = version
        self._record_event("activate", version=version, previous=previous)
        self._write_manifest()
        LOG.info(kv("registry.activate", version=version, previous=previous))
        self._notify("activate", version)

    def rollback(self) -> str:
        """Re-activate the previously active version; returns its tag.

        Raises:
            RegistryError: when there is no earlier activation to return
                to -- i.e. fewer than two versions have ever been
                activated, so the registry has no known-good predecessor.
        """
        if len(self._history) < 2:
            raise RegistryError(
                f"cannot roll back: {len(self._history)} version(s) have "
                "been activated and rollback needs a predecessor "
                "(activate at least two versions first)"
            )
        rolled_back = self._history.pop()
        self._active = self._history[-1]
        self._record_event(
            "rollback", version=self._active, rolled_back=rolled_back
        )
        self._write_manifest()
        LOG.warning(kv(
            "registry.rollback", version=self._active, rolled_back=rolled_back
        ))
        self._notify("rollback", self._active)
        return self._active

    # ----- read path ------------------------------------------------------

    @property
    def active(self) -> str | None:
        """The currently active version tag (None before first activate)."""
        return self._active

    @property
    def versions(self) -> list[str]:
        """All published version tags, in publish order."""
        return sorted(self._versions)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The append-only publish/activate/rollback audit trail.

        Each event is ``{"action", "at", "version", ...}``; rollbacks also
        name the ``rolled_back`` version, so an external decision log can
        cite exactly which registry transition it caused.
        """
        return [dict(e) for e in self._events]

    def meta(self, version: str) -> dict[str, Any]:
        """Publish-time metadata of a version."""
        if version not in self._versions:
            raise KeyError(f"unknown model version {version!r}")
        return dict(self._versions[version]["meta"])

    def load(self, version: str | None = None) -> ModelBundle:
        """Load a bundle (the active one by default), verifying checksums.

        Both the manifest-recorded checksum and the bundle's embedded one
        must match the file content, so neither a tampered bundle nor a
        swapped manifest entry loads silently.
        """
        if version is None:
            version = self._active
        if version is None:
            raise RuntimeError("registry has no active model version")
        if version not in self._versions:
            raise KeyError(f"unknown model version {version!r}")
        payload = json.loads((self.root / version / _BUNDLE).read_text())
        actual = payload_checksum(payload)
        if actual != self._versions[version]["checksum"]:
            raise ValueError(
                f"bundle {version} does not match its manifest checksum "
                "(corrupted or edited)"
            )
        return ModelBundle.from_dict(payload)
