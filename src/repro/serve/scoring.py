"""The sharded scoring engine: store + registry -> dispatch lists.

This is the Saturday hot path of the serving subsystem.  One scoring run
for week ``t``:

1. split the population into contiguous line-shards and fan them across
   :func:`repro.parallel.parallel_map` workers;
2. each shard *encodes its own rows* -- the Table-3 encoder runs on
   zero-copy row views of the stored measurements, population arrays, and
   ticket vector, so no simulation, no re-training, and no full-plant
   temporaries;
3. each shard scores with the predictor's
   :class:`~repro.ml.ensemble_scoring.CompiledEnsemble` through the
   *columnar* entry point -- derived columns (quadratics, products of the
   selected base features) are materialised lazily per shard and only for
   the columns the compiled ensemble actually reads;
4. Platt-calibrate the concatenated margins into ``P(Tkt | x)`` and cut a
   capacity-bounded :class:`~repro.tickets.dispatch.DispatchList`.

Exactness: every encoder operation is row-wise (delta, per-line
time-series statistics, profile ratios, ticket recency, modem fraction
all reduce along the week/feature axes of each line independently), so
encoding a row-slice yields exactly the rows of the full encoding;
shards are contiguous, ordered, and reduced by concatenation, and the
columnar scorer folds feature groups in the same order as the batch
scorer.  The scores -- and therefore the dispatch list -- are therefore
bit-identical to ``TicketPredictor.score_week`` on the live simulation,
at any ``REPRO_WORKERS`` count and any shard size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.explain.report import ExplanationReport, build_report
from repro.features.encoding import FeatureSet
from repro.obs.log import RateLimitedLogger, get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import span
from repro.parallel import parallel_map, split_shards
from repro.serve.cache import ScoreCache
from repro.serve.registry import ModelBundle
from repro.serve.store import (
    StoredWorld,
    _measurement_row_view,
    _population_row_view,
    _StoredTicketView,
)
from repro.tickets.dispatch import DispatchList, Dispatcher, build_dispatch_list

__all__ = ["WeekScores", "ScoringEngine", "DEFAULT_SHARD_SIZE", "score_bundles"]

#: Default lines per shard; small enough to parallelise a laptop-scale
#: population, large enough that per-shard numpy dispatch overhead is noise.
DEFAULT_SHARD_SIZE = 16_384

#: Scoring-run durations: a cached test-scale week scores in milliseconds,
#: a cold 100K-line week takes a second or two.
_SCORE_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Shard-level logging is a hot loop (a 100K-line week is dozens of
#: shards per run, every run): sample 1-in-50 per event, not per line.
_SHARD_LOG = RateLimitedLogger(get_logger("serve.scoring"), sample_every=50)


@dataclass(frozen=True)
class WeekScores:
    """One scored campaign.

    Attributes:
        week: the scored week.
        day: absolute Saturday day of the underlying line test.
        scores: per-line calibrated ticket probabilities.
        n_shards: how many line-shards the run fanned out.
        encode_seconds: feature-encoding wall time.
        score_seconds: shard scoring + calibration wall time.
    """

    week: int
    day: int
    scores: np.ndarray
    n_shards: int
    encode_seconds: float  # shared setup: population, store views
    score_seconds: float  # sharded encode + score + calibration

    @property
    def lines_per_sec(self) -> float:
        total = self.encode_seconds + self.score_seconds
        return len(self.scores) / total if total > 0 else 0.0


# Row views live next to the store (the out-of-core StoredWorld uses the
# same machinery); re-exported here for their historical import site.
_slice_measurements = _measurement_row_view
_slice_population = _population_row_view


class _AssembledColumns:
    """Lazy provider of the predictor's model-input columns for one shard.

    Column ``j`` of the assembled matrix is, in order: a selected base
    column, a selected base column squared, or a product of two base
    columns -- exactly what ``TicketPredictor._assemble`` materialises,
    computed here on demand so unused columns cost nothing.
    """

    def __init__(self, base_rows: np.ndarray, recipes):
        self._rows = base_rows
        self._base = recipes.base_indices
        self._quad = recipes.quad_indices
        self._pairs = recipes.product_pairs

    def __call__(self, j: int) -> np.ndarray:
        n_base, n_quad = len(self._base), len(self._quad)
        if j < n_base:
            return self._rows[:, self._base[j]]
        if j < n_base + n_quad:
            return self._rows[:, self._quad[j - n_base]] ** 2
        i, k = self._pairs[j - n_base - n_quad]
        return self._rows[:, i] * self._rows[:, k]


def score_bundles(
    bundles: dict[str, ModelBundle],
    world: StoredWorld,
    week: int,
    shard_size: int = DEFAULT_SHARD_SIZE,
    workers: int | None = None,
) -> dict[str, np.ndarray]:
    """Score several bundles over one stored week, encoding each shard once.

    This is the shadow champion--challenger path: all bundles must share
    the same encoder configuration, so the Table-3 encode -- the dominant
    cost of a scoring run -- is paid once per shard and only the cheap
    per-model column assembly + compiled-ensemble fold is repeated.  Each
    model's scores are bit-identical to a solo :class:`ScoringEngine` run
    of the same bundle (same row-wise encode, same columnar fold order).

    Returns calibrated per-line score vectors keyed like ``bundles``.
    """
    if not bundles:
        raise ValueError("need at least one bundle to score")
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    names = list(bundles)
    encoder_configs = [bundles[n].predictor.encoder.config for n in names]
    if any(cfg != encoder_configs[0] for cfg in encoder_configs[1:]):
        raise ValueError(
            "bundles use different encoder configurations; the shared-"
            "encode shadow path needs identical Table-3 encoders"
        )
    models = {}
    for name in names:
        predictor = bundles[name].predictor
        if predictor.model is None or predictor.model.calibrator is None:
            raise RuntimeError(f"bundle {name!r} is not fitted/calibrated")
        models[name] = (predictor.model.compiled(), predictor.recipes)

    with span("serve.score_bundles", week=week, models=len(names)) as run_span:
        population = world.population()
        if not world.out_of_core_active():
            world.measurements()  # build the dense cube once, outside the fan-out
        day = world.store.day_of(week)
        last_day = np.asarray(world.store.last_ticket_day(week))
        encoder = bundles[names[0]].predictor.encoder
        shards = split_shards(world.n_lines, shard_size)
        run_span.set_tag("shards", len(shards))

        def encode_and_score_all(shard: slice) -> list[np.ndarray]:
            base = encoder.encode(
                world.shard_measurements(shard),
                week,
                _population_row_view(population, shard),
                _StoredTicketView(last_day[shard], day),
            )
            n_rows = base.matrix.shape[0]
            _SHARD_LOG.debug(
                "serve.shadow_shard", week=week, rows=n_rows,
                models=len(names),
            )
            return [
                compiled.decision_function_columns(
                    _AssembledColumns(base.matrix, recipes), n_rows
                )
                for compiled, recipes in (models[n] for n in names)
            ]

        per_shard = parallel_map(
            encode_and_score_all, shards, workers, task_label="serve.shadow_shard"
        )
        out: dict[str, np.ndarray] = {}
        for i, name in enumerate(names):
            margin = (
                np.concatenate([shard[i] for shard in per_shard])
                if per_shard
                else np.empty(0)
            )
            calibrator = bundles[name].predictor.model.calibrator
            out[name] = calibrator.transform(margin)
    return out


class ScoringEngine:
    """Scores stored weeks with a registry bundle, shard by shard."""

    def __init__(
        self,
        bundle: ModelBundle,
        world: StoredWorld,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int | None = None,
        model_version: str | None = None,
        cache: ScoreCache | None = None,
    ):
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.bundle = bundle
        self.world = world
        self.shard_size = shard_size
        self.workers = workers
        self.model_version = model_version
        self.cache = cache
        self._base_cache: tuple[int, FeatureSet] | None = None
        self._score_cache: dict[int, WeekScores] = {}

    # ----- feature access -------------------------------------------------

    def base_features(self, week: int) -> FeatureSet:
        """Encoded base features of a stored week.

        The last week stays on the engine; the shared
        :class:`~repro.serve.cache.ScoreCache` (when attached) keeps
        every week's encoding across engine reloads, so repeat
        ``/locate`` and ``/explain`` reads never re-encode.
        """
        if self._base_cache is not None and self._base_cache[0] == week:
            return self._base_cache[1]
        if self.cache is not None:
            base = self.cache.get("features", week, self.model_version)
            if base is not None:
                self._base_cache = (week, base)
                return base
        base = self.world.encode_week(week, self.bundle.predictor.encoder)
        self._base_cache = (week, base)
        if self.cache is not None:
            self.cache.put("features", week, self.model_version, base)
        return base

    # ----- scoring --------------------------------------------------------

    def is_cached(self, week: int) -> bool:
        """Whether ``score_week`` would return without a scoring run."""
        if week in self._score_cache:
            return True
        return self.cache is not None and self.cache.peek(
            "scores", week, self.model_version
        )

    def score_week(self, week: int) -> WeekScores:
        """Calibrated P(ticket) for every line at a stored week (cached).

        Two cache levels: the engine's own week dict, then the shared
        version-keyed :class:`~repro.serve.cache.ScoreCache` that
        survives reloads.  A full shard scan only runs when both miss;
        the result is immutable, so both levels serve it verbatim.
        """
        cached = self._score_cache.get(week)
        if cached is not None:
            return cached
        if self.cache is not None:
            shared = self.cache.get("scores", week, self.model_version)
            if shared is not None:
                self._score_cache[week] = shared
                return shared
        predictor = self.bundle.predictor
        model = predictor.model
        if model is None:
            raise RuntimeError("bundle predictor is not fitted")

        registry = get_registry()
        week_seconds = registry.histogram(
            "repro_serve_score_week_seconds",
            "Wall time of one full (uncached) week scoring run",
            buckets=_SCORE_BUCKETS,
        )

        with span("serve.score_week", week=week) as run_span, \
                week_seconds.time():
            t0 = time.perf_counter()
            population = self.world.population()
            if not self.world.out_of_core_active():
                # Build the dense cube once, outside the shard fan-out;
                # out-of-core worlds instead read per-shard rows below.
                self.world.measurements()
            day = self.world.store.day_of(week)
            last_day = np.asarray(self.world.store.last_ticket_day(week))
            t1 = time.perf_counter()

            compiled = model.compiled()
            recipes = predictor.recipes
            encoder = predictor.encoder
            shards = split_shards(self.world.n_lines, self.shard_size)
            run_span.set_tag("shards", len(shards))
            run_span.set_tag("lines", self.world.n_lines)

            def encode_and_score(shard: slice) -> np.ndarray:
                base = encoder.encode(
                    self.world.shard_measurements(shard),
                    week,
                    _population_row_view(population, shard),
                    _StoredTicketView(last_day[shard], day),
                )
                columns = _AssembledColumns(base.matrix, recipes)
                _SHARD_LOG.debug(
                    "serve.shard", week=week, rows=base.matrix.shape[0],
                )
                return compiled.decision_function_columns(
                    columns, base.matrix.shape[0]
                )

            margins = parallel_map(
                encode_and_score, shards, self.workers, task_label="serve.shard"
            )
            margin = np.concatenate(margins) if margins else np.empty(0)
            if model.calibrator is None:
                raise RuntimeError("bundle model has no calibrator")
            with span("serve.calibrate", week=week):
                scores = model.calibrator.transform(margin)
            t2 = time.perf_counter()

        result = WeekScores(
            week=week,
            day=day,
            scores=scores,
            n_shards=len(shards),
            encode_seconds=t1 - t0,
            score_seconds=t2 - t1,
        )
        self._score_cache[week] = result
        if self.cache is not None:
            self.cache.put("scores", week, self.model_version, result)
        return result

    def dispatch(self, week: int, capacity: int | None = None) -> DispatchList:
        """The top-``capacity`` dispatch list for a stored week.

        ``capacity`` defaults to the predictor's configured ATDS capacity;
        the ranking matches ``TicketPredictor.predict_top`` exactly.
        """
        scored = self.score_week(week)
        if capacity is None:
            capacity = self.bundle.predictor.config.capacity
        return build_dispatch_list(
            scored.scores,
            capacity,
            week=week,
            day=scored.day,
            model_version=self.model_version,
        )

    # ----- trouble location ----------------------------------------------

    def locate(self, week: int, line_id: int, top_k: int = 10) -> list[dict]:
        """Ranked disposition candidates for one line at a stored week.

        Uses the bundle's combined locator on the line's encoded features
        (the serving analogue of handing the technician the Section-6
        ranked list).  Raises if the bundle was published without a
        locator.
        """
        return self.locate_batch(week, [line_id], top_k=top_k)[0]

    def locate_batch(
        self, week: int, line_ids, top_k: int = 10
    ) -> list[list[dict]]:
        """Ranked disposition candidates for several lines at once.

        All requested lines are scored in one stacked multi-head locator
        pass (the 52 disposition heads and 4 location heads each read
        the gathered feature columns once), instead of N single-row
        ``predict_proba`` calls.  Per-line rankings are identical to
        :meth:`locate`.
        """
        locator = self.bundle.locator
        if locator is None:
            raise RuntimeError("bundle has no trouble locator")
        ids = [int(line_id) for line_id in line_ids]
        if not ids:
            raise ValueError("no line ids supplied")
        for line_id in ids:
            if not 0 <= line_id < self.world.n_lines:
                raise IndexError(f"line {line_id} out of range")
        base = self.base_features(week)
        probs = locator.predict_proba(base.matrix[np.asarray(ids, dtype=np.intp)])
        rankings: list[list[dict]] = []
        for row in probs:
            order = np.argsort(-row, kind="stable")[:top_k]
            rankings.append(
                [
                    {
                        "rank": rank + 1,
                        "disposition": int(code),
                        "name": Dispatcher.disposition_name(int(code)),
                        "posterior": float(row[code]),
                    }
                    for rank, code in enumerate(order)
                ]
            )
        return rankings

    # ----- explanation ----------------------------------------------------

    def explain(
        self, week: int, line_id: int, top_k: int = 5, triage=None
    ) -> ExplanationReport:
        """The two-stage explanation report for one scored line-week.

        Decomposes the line's served margin into exact per-feature votes
        (the attribution fold reproduces the compiled margin
        bit-identically), attaches plant context and -- when the bundle
        carries a locator -- the predicted disposition with its
        templated technician steps.  Reads go through the week caches,
        so explaining an already-scored week costs no shard scan.
        """
        line_id = int(line_id)
        if not 0 <= line_id < self.world.n_lines:
            raise IndexError(f"line {line_id} out of range")
        scored = self.score_week(week)
        base = self.base_features(week)
        ranking = None
        if self.bundle.locator is not None:
            ranking = self.locate(week, line_id, top_k=3)
        topology = self.world.population().topology
        return build_report(
            line=line_id,
            week=week,
            day=scored.day,
            model_version=self.model_version,
            predictor=self.bundle.predictor,
            base_row=base.matrix[line_id],
            p_ticket=float(scored.scores[line_id]),
            topology=topology,
            ranking=ranking,
            triage=triage,
            top_k=top_k,
        )

    def attribution_payloads(
        self, week: int, line_ids, top_k: int = 3
    ) -> list[dict]:
        """Compact attribution payloads for a batch of lines (one per id).

        The dispatch-list enrichment path (``/dispatch?explain=1``): the
        week's base encoding is read once and each line's margin is
        decomposed exactly, keeping only the ``top_k`` votes per line.
        """
        from repro.explain.attribution import (
            assemble_model_row,
            attribute_ensemble,
        )

        predictor = self.bundle.predictor
        if predictor.model is None:
            raise RuntimeError("bundle predictor is not fitted")
        scored = self.score_week(week)
        base = self.base_features(week)
        compiled = predictor.model.compiled()
        payloads: list[dict] = []
        for line_id in line_ids:
            line_id = int(line_id)
            row = assemble_model_row(base.matrix[line_id], predictor.recipes)
            attribution = attribute_ensemble(
                compiled, row, names=predictor.feature_names
            )
            payloads.append({
                "line": line_id,
                "p_ticket": float(scored.scores[line_id]),
                "margin": attribution.margin,
                "contributions": [
                    c.to_dict() for c in attribution.top(top_k)
                ],
            })
        return payloads
