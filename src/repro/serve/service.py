"""The scoring service: a stdlib HTTP front end over store + registry.

Endpoints (all JSON):

=======================  ===================================================
``GET /healthz``         liveness + active model version + stored weeks
``GET /metrics``         scoring latency, lines/sec, request counters
``GET /score``           per-line P(ticket): ``?line=ID[&week=W]``
``GET /dispatch``        top-N dispatch list: ``?[week=W][&capacity=N]``
``GET /locate``          disposition ranking: ``?line=ID[&week=W][&top=K]``
``POST /reload``         re-read the registry's active bundle and the store
=======================  ===================================================

``week`` defaults to the latest stored week.  The server is a
``ThreadingHTTPServer`` (stdlib only, per the no-new-deps rule); scored
weeks are cached per model version, so the common steady state -- many
reads of one Saturday's scores -- costs one sharded scoring run.
:class:`ScoringService` keeps all routing logic in plain methods
returning ``(status, payload)`` pairs, so tests and the in-process smoke
check can drive it without sockets.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.serve.registry import ModelRegistry
from repro.serve.scoring import DEFAULT_SHARD_SIZE, ScoringEngine
from repro.serve.store import LineWeekStore, StoredWorld

__all__ = ["ScoringService", "make_server"]


class _ServiceError(Exception):
    """An error with an HTTP status, raised by route handlers."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ScoringService:
    """Serving state: one store, one registry, one active engine."""

    def __init__(
        self,
        store_root,
        registry_root,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int | None = None,
    ):
        self.registry = ModelRegistry(registry_root)
        self.world = StoredWorld(LineWeekStore.open(store_root))
        self.shard_size = shard_size
        self.workers = workers
        self.engine: ScoringEngine | None = None
        self._started = time.time()
        self._lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._lines_scored = 0
        self._score_seconds = 0.0
        self._last: dict[str, float] = {}
        self.reload()

    # ----- lifecycle ------------------------------------------------------

    def reload(self) -> str:
        """(Re)load the active bundle and refresh the store manifest."""
        self.world.refresh()
        version = self.registry.active
        if version is None:
            raise RuntimeError(
                "registry has no active model version -- publish and "
                "activate a bundle first"
            )
        bundle = self.registry.load(version)
        self.engine = ScoringEngine(
            bundle,
            self.world,
            shard_size=self.shard_size,
            workers=self.workers,
            model_version=version,
        )
        return version

    @property
    def model_version(self) -> str:
        assert self.engine is not None
        return self.engine.model_version or "unknown"

    # ----- shared helpers -------------------------------------------------

    def _count(self, route: str) -> None:
        with self._lock:
            self._requests[route] = self._requests.get(route, 0) + 1

    def _resolve_week(self, query: dict[str, list[str]]) -> int:
        if "week" in query:
            week = _int_param(query, "week")
        else:
            week = self.world.store.latest_week
            if week < 0:
                raise _ServiceError(409, "the store holds no weeks yet")
        if week not in self.world.store.weeks:
            raise _ServiceError(404, f"week {week} is not in the store")
        return week

    def _scored(self, week: int):
        assert self.engine is not None
        fresh = week not in self.engine._score_cache
        scored = self.engine.score_week(week)
        if fresh:
            with self._lock:
                self._lines_scored += len(scored.scores)
                self._score_seconds += scored.encode_seconds + scored.score_seconds
                self._last = {
                    "week": float(week),
                    "seconds": scored.encode_seconds + scored.score_seconds,
                    "lines_per_sec": scored.lines_per_sec,
                }
        return scored

    # ----- routes ---------------------------------------------------------

    def handle_healthz(self, query) -> tuple[int, dict]:
        del query
        store = self.world.store
        return 200, {
            "status": "ok",
            "model_version": self.model_version,
            "n_lines": store.n_lines,
            "weeks": store.weeks,
            "latest_week": store.latest_week,
        }

    def handle_metrics(self, query) -> tuple[int, dict]:
        del query
        with self._lock:
            mean_rate = (
                self._lines_scored / self._score_seconds
                if self._score_seconds > 0
                else 0.0
            )
            return 200, {
                "model_version": self.model_version,
                "uptime_seconds": time.time() - self._started,
                "requests": dict(self._requests),
                "lines_scored": self._lines_scored,
                "scoring_seconds_total": self._score_seconds,
                "mean_lines_per_sec": mean_rate,
                "last_scoring": dict(self._last),
            }

    def handle_score(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        line = _int_param(query, "line")
        if not 0 <= line < self.world.n_lines:
            raise _ServiceError(404, f"line {line} out of range")
        scored = self._scored(week)
        return 200, {
            "line": line,
            "week": week,
            "day": scored.day,
            "p_ticket": float(scored.scores[line]),
            "model_version": self.model_version,
        }

    def handle_dispatch(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        self._scored(week)  # populate cache + metrics
        assert self.engine is not None
        capacity = (
            _int_param(query, "capacity") if "capacity" in query else None
        )
        if capacity is not None and capacity < 0:
            raise _ServiceError(400, "capacity must be >= 0")
        return 200, self.engine.dispatch(week, capacity).to_dict()

    def handle_locate(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        line = _int_param(query, "line")
        top = _int_param(query, "top") if "top" in query else 10
        assert self.engine is not None
        if self.engine.bundle.locator is None:
            raise _ServiceError(
                409, "the active bundle was published without a locator"
            )
        try:
            ranking = self.engine.locate(week, line, top_k=top)
        except IndexError as exc:
            raise _ServiceError(404, str(exc)) from None
        return 200, {
            "line": line,
            "week": week,
            "model_version": self.model_version,
            "ranking": ranking,
        }

    def handle_reload(self, query) -> tuple[int, dict]:
        del query
        version = self.reload()
        return 200, {"status": "reloaded", "model_version": version}

    _GET_ROUTES = {
        "/healthz": handle_healthz,
        "/metrics": handle_metrics,
        "/score": handle_score,
        "/dispatch": handle_dispatch,
        "/locate": handle_locate,
    }
    _POST_ROUTES = {"/reload": handle_reload}

    def dispatch_request(self, method: str, target: str) -> tuple[int, dict]:
        """Route one request; returns (HTTP status, JSON payload)."""
        parts = urlsplit(target)
        routes = self._GET_ROUTES if method == "GET" else self._POST_ROUTES
        handler = routes.get(parts.path)
        if handler is None:
            return 404, {"error": f"unknown route {method} {parts.path}"}
        self._count(parts.path)
        try:
            return handler(self, parse_qs(parts.query))
        except _ServiceError as exc:
            return exc.status, {"error": str(exc)}
        except (KeyError, ValueError) as exc:
            return 400, {"error": str(exc)}


def _int_param(query: dict[str, list[str]], name: str) -> int:
    values = query.get(name)
    if not values:
        raise _ServiceError(400, f"missing query parameter {name!r}")
    try:
        return int(values[0])
    except ValueError:
        raise _ServiceError(
            400, f"query parameter {name!r} must be an integer"
        ) from None


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON adapter around :meth:`ScoringService.dispatch_request`."""

    service: ScoringService  # set by make_server

    def _respond(self, method: str) -> None:
        status, payload = self.service.dispatch_request(method, self.path)
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._respond("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the operator's reverse proxy's job


def make_server(
    service: ScoringService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for the service (port 0 = ephemeral).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)
