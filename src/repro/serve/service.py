"""The scoring service: a stdlib HTTP front end over store + registry.

Endpoints (JSON unless noted):

=======================  ===================================================
``GET /healthz``         liveness + active model version + stored weeks
``GET /health``          SLO posture: per-objective attainment and
                         burn rates from the in-process monitor
``GET /metrics``         full metrics registry; ``?format=prometheus``
                         returns text exposition for a scraper
``GET /trace``           recorded span trees; ``?format=text`` renders the
                         flame-style report (requires ``REPRO_TRACE``)
``GET /score``           per-line P(ticket): ``?line=ID[&week=W]``
``GET /dispatch``        top-N dispatch list: ``?[week=W][&capacity=N]``
``GET /triage``          plant-level triage of a week's scores:
                         ``?[week=W][&capacity=N]`` -- upstream clusters
                         and the suppressed + backfilled dispatch plan
``GET /explain``         two-stage explanation report for one line:
                         ``?line=ID[&week=W][&top=K]`` -- exact
                         per-feature attributions with measured evidence,
                         plant context, predicted disposition and
                         templated technician next steps
``GET /locate``          disposition ranking: ``?line=ID[&week=W][&top=K]``
``GET /lifecycle``       continuous-training status: registry versions and
                         events, the signed decision log, chain validity
``POST /reload``         re-read the registry's active bundle and the store
=======================  ===================================================

``week`` defaults to the latest stored week.  The server is a
``ThreadingHTTPServer`` (stdlib only, per the no-new-deps rule); scored
weeks are cached per model version, so the common steady state -- many
reads of one Saturday's scores -- costs one sharded scoring run.
:class:`ScoringService` keeps all routing logic in plain methods
returning ``(status, payload)`` pairs, so tests and the in-process smoke
check can drive it without sockets.

All service telemetry lives on the :mod:`repro.obs` registry
(``repro_http_requests_total``, ``repro_http_request_seconds``, the
scoring totals); ``/metrics`` takes one snapshot under the registry lock
and formats it outside, so a slow scrape never blocks handler threads.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import get_registry
from repro.obs.slo import DEFAULT_SLOS, SLOMonitor
from repro.obs.tracing import flame_report, get_tracer, tracing_enabled
from repro.serve.cache import ScoreCache
from repro.serve.registry import ModelRegistry
from repro.serve.scoring import DEFAULT_SHARD_SIZE, ScoringEngine
from repro.serve.store import LineWeekStore, StoredWorld

__all__ = ["ScoringService", "make_server"]

#: Request latencies: cached reads are sub-millisecond (often tens of
#: microseconds), a cold scoring run can take seconds.
_REQUEST_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _ServiceError(Exception):
    """An error with an HTTP status, raised by route handlers."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ScoringService:
    """Serving state: one store, one registry, one active engine."""

    def __init__(
        self,
        store_root,
        registry_root,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int | None = None,
        require_model: bool = True,
        history=None,
        slos=None,
    ):
        """Args:
            store_root: line-week store directory.
            registry_root: model registry directory.
            shard_size: lines per scoring shard.
            workers: parallel-fabric worker override.
            require_model: raise at construction when the registry has no
                active version (the default).  ``False`` starts the
                service anyway -- scoring routes answer 503 until a
                bundle is activated and ``POST /reload`` succeeds, so a
                registry-only mount degrades instead of crashing.
            history: optional :class:`~repro.obs.history.HistoryStore`;
                SLO ticks and alerts are persisted there when given.
            slos: objective overrides for the SLO monitor (defaults to
                :data:`~repro.obs.slo.DEFAULT_SLOS`).
        """
        self.registry = ModelRegistry(registry_root)
        self.world = StoredWorld(LineWeekStore.open(store_root))
        self.shard_size = shard_size
        self.workers = workers
        self.engine: ScoringEngine | None = None
        # The (line, week, model_version) read cache outlives engine
        # reloads; registry activations invalidate it the moment the
        # active version moves (keeping the new version's entries warm).
        self.cache = ScoreCache()
        self.registry.add_listener(self._on_registry_event)
        self._started = time.time()
        self.slo_monitor = SLOMonitor(
            slos=slos if slos is not None else DEFAULT_SLOS,
            history=history,
        )

        metrics = get_registry()
        self._requests_total = metrics.counter(
            "repro_http_requests_total", "HTTP requests handled, by route"
        )
        self._request_seconds = metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency, by route",
            buckets=_REQUEST_BUCKETS,
        )
        self._lines_scored_total = metrics.counter(
            "repro_serve_lines_scored_total",
            "Lines scored by uncached scoring runs",
        )
        self._scoring_seconds_total = metrics.counter(
            "repro_serve_scoring_seconds_total",
            "Wall time spent in uncached scoring runs",
        )
        self._last_week = metrics.gauge(
            "repro_serve_last_scoring_week", "Week of the last scoring run"
        )
        self._last_seconds = metrics.gauge(
            "repro_serve_last_scoring_seconds",
            "Wall time of the last scoring run",
        )
        self._last_rate = metrics.gauge(
            "repro_serve_last_lines_per_sec",
            "Throughput of the last scoring run",
        )
        self._uptime = metrics.gauge(
            "repro_serve_uptime_seconds", "Seconds since service construction"
        )
        self._explains_total = metrics.counter(
            "repro_serve_explains_total",
            "Explanation payloads rendered, by source route",
        )
        self._explain_seconds = metrics.histogram(
            "repro_serve_explain_seconds",
            "Wall time building one explanation report",
            buckets=_REQUEST_BUCKETS,
        )

        try:
            self.reload()
        except RuntimeError:
            if require_model:
                raise

    # ----- lifecycle ------------------------------------------------------

    def _on_registry_event(self, action: str, version: str | None) -> None:
        """Invalidate cached reads when the active model moves.

        Entries are version-pinned and immutable, so the (now or soon)
        active version's entries stay warm -- a rollback to a version
        that served recently answers its first read from cache.
        """
        self.cache.invalidate(reason=action, keep_version=version)

    def reload(self) -> str:
        """(Re)load the active bundle and refresh the store manifest."""
        self.world.refresh()
        version = self.registry.active
        if version is None:
            raise RuntimeError(
                "registry has no active model version -- publish and "
                "activate a bundle first"
            )
        # External registry writers (the lifecycle controller runs its
        # own ModelRegistry instance on the same root) never fire this
        # service's listeners, so a reload re-pins the cache itself.
        self.cache.invalidate(reason="reload", keep_version=version)
        bundle = self.registry.load(version)
        self.engine = ScoringEngine(
            bundle,
            self.world,
            shard_size=self.shard_size,
            workers=self.workers,
            model_version=version,
            cache=self.cache,
        )
        return version

    def _require_engine(self) -> ScoringEngine:
        """The active engine, or a 503 while no model is loaded.

        Scoring routes degrade to Service Unavailable (instead of an
        assertion crash) when the service was mounted over a registry
        with no active version yet.
        """
        if self.engine is None:
            raise _ServiceError(
                503, "no active model loaded -- activate a version and "
                "POST /reload"
            )
        return self.engine

    @property
    def model_version(self) -> str:
        if self.engine is None:
            return "none"
        return self.engine.model_version or "unknown"

    # ----- shared helpers -------------------------------------------------

    def _resolve_week(self, query: dict[str, list[str]]) -> int:
        if "week" in query:
            week = _int_param(query, "week")
        else:
            week = self.world.store.latest_week
            if week < 0:
                raise _ServiceError(409, "the store holds no weeks yet")
        if week not in self.world.store.weeks:
            raise _ServiceError(404, f"week {week} is not in the store")
        return week

    def _scored(self, week: int):
        engine = self._require_engine()
        fresh = not engine.is_cached(week)
        scored = engine.score_week(week)
        if fresh:
            seconds = scored.encode_seconds + scored.score_seconds
            self._lines_scored_total.inc(len(scored.scores))
            self._scoring_seconds_total.inc(seconds)
            self._last_week.set(week)
            self._last_seconds.set(seconds)
            self._last_rate.set(scored.lines_per_sec)
        return scored

    # ----- routes ---------------------------------------------------------

    def handle_healthz(self, query) -> tuple[int, dict]:
        del query
        store = self.world.store
        return 200, {
            "status": "ok" if self.engine is not None else "degraded",
            "model_version": self.model_version,
            "n_lines": store.n_lines,
            "weeks": store.weeks,
            "latest_week": store.latest_week,
        }

    def handle_health(self, query) -> tuple[int, dict]:
        del query
        payload = self.slo_monitor.status()
        payload["model_version"] = self.model_version
        payload["latest_week"] = self.world.store.latest_week
        return 200, payload

    def handle_metrics(self, query) -> tuple[int, dict | str]:
        self._uptime.set(time.time() - self._started)
        registry = get_registry()
        if _format_param(query) == "prometheus":
            return 200, registry.to_prometheus()

        # JSON view: the full snapshot plus the legacy summary keys the
        # ops tooling reads, all derived from one snapshot taken under
        # the registry lock and formatted here, outside it.
        snapshot = registry.snapshot()
        requests = {
            sample["labels"].get("route", ""): int(sample["value"])
            for sample in snapshot.get("repro_http_requests_total", {}).get(
                "samples", []
            )
        }
        lines_scored = _scalar(snapshot, "repro_serve_lines_scored_total")
        score_seconds = _scalar(snapshot, "repro_serve_scoring_seconds_total")
        return 200, {
            "model_version": self.model_version,
            "uptime_seconds": time.time() - self._started,
            "requests": requests,
            "lines_scored": int(lines_scored),
            "scoring_seconds_total": score_seconds,
            "mean_lines_per_sec": (
                lines_scored / score_seconds if score_seconds > 0 else 0.0
            ),
            "last_scoring": {
                "week": _scalar(snapshot, "repro_serve_last_scoring_week"),
                "seconds": _scalar(snapshot, "repro_serve_last_scoring_seconds"),
                "lines_per_sec": _scalar(snapshot, "repro_serve_last_lines_per_sec"),
            },
            "metrics": snapshot,
        }

    def handle_trace(self, query) -> tuple[int, dict | str]:
        spans = get_tracer().export()
        if _format_param(query) == "text":
            return 200, flame_report(spans) + "\n"
        return 200, {
            "tracing_enabled": tracing_enabled(),
            "spans": spans,
        }

    def handle_score(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        line = _int_param(query, "line")
        if not 0 <= line < self.world.n_lines:
            raise _ServiceError(404, f"line {line} out of range")
        scored = self._scored(week)
        return 200, {
            "line": line,
            "week": week,
            "day": scored.day,
            "p_ticket": float(scored.scores[line]),
            "model_version": self.model_version,
        }

    def handle_dispatch(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        self._scored(week)  # populate cache + metrics
        engine = self._require_engine()
        capacity = (
            _int_param(query, "capacity") if "capacity" in query else None
        )
        if capacity is not None and capacity < 0:
            raise _ServiceError(400, "capacity must be >= 0")
        dispatch = engine.dispatch(week, capacity)
        if _flag_param(query, "explain"):
            # Enriched form: each dispatched line travels with its exact
            # top-K attribution payload, so the hand-off to ATDS already
            # carries the evidence a technician (or triage UI) needs.
            top = _int_param(query, "top") if "top" in query else 3
            if top < 1:
                raise _ServiceError(400, "top must be >= 1")
            with self._explain_seconds.time(route="/dispatch"):
                payloads = engine.attribution_payloads(
                    week, dispatch.line_ids, top_k=top
                )
            dispatch = dispatch.with_attributions(payloads)
            self._explains_total.inc(len(payloads), route="/dispatch")
        return 200, dispatch.to_dict()

    def _week_triage(self, week: int):
        """The week's triage result, computed once per (week, version).

        Returns None when the fleet layer's scipy dependency is missing
        -- the explanation report then simply omits cluster membership.
        """
        try:
            from repro.fleet import find_clusters
        except ImportError:
            return None
        engine = self._require_engine()
        triage = self.cache.get("triage", week, engine.model_version)
        if triage is not None:
            return triage
        scored = self._scored(week)
        capacity = engine.bundle.predictor.config.capacity
        topology = self.world.population().topology
        triage = find_clusters(scored.scores, topology, capacity)
        self.cache.put("triage", week, engine.model_version, triage)
        return triage

    def handle_explain(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        line = _int_param(query, "line")
        if not 0 <= line < self.world.n_lines:
            raise _ServiceError(404, f"line {line} out of range")
        top = _int_param(query, "top") if "top" in query else 5
        if top < 1:
            raise _ServiceError(400, "top must be >= 1")
        engine = self._require_engine()
        self._scored(week)  # scoring-run metrics for cold weeks
        triage = self._week_triage(week)
        with self._explain_seconds.time(route="/explain"):
            report = engine.explain(week, line, top_k=top, triage=triage)
        self._explains_total.inc(route="/explain")
        payload = report.to_dict()
        payload["rendered"] = report.render_text()
        return 200, payload

    def handle_triage(self, query) -> tuple[int, dict]:
        # Imported lazily: the fleet layer (and its scipy dependency)
        # stays off the serve import path until the route is used.
        from repro.fleet import find_clusters, plan_dispatches

        week = self._resolve_week(query)
        scored = self._scored(week)
        engine = self._require_engine()
        capacity = (
            _int_param(query, "capacity")
            if "capacity" in query
            else engine.bundle.predictor.config.capacity
        )
        if capacity <= 0:
            raise _ServiceError(400, "capacity must be positive")
        topology = self.world.population().topology
        triage = find_clusters(scored.scores, topology, capacity)
        plan = plan_dispatches(scored.scores, capacity, triage, week=week)
        payload = triage.to_dict()
        payload.update({
            "week": week,
            "day": scored.day,
            "model_version": self.model_version,
            "plan": plan.to_dict(),
        })
        return 200, payload

    def handle_locate(self, query) -> tuple[int, dict]:
        week = self._resolve_week(query)
        top = _int_param(query, "top") if "top" in query else 10
        engine = self._require_engine()
        if engine.bundle.locator is None:
            raise _ServiceError(
                409, "the active bundle was published without a locator"
            )
        if "lines" in query:
            # Batched form: ?lines=a,b,c -- all lines ranked off one
            # stacked multi-head locator pass.
            lines = _int_list_param(query, "lines")
            try:
                rankings = engine.locate_batch(week, lines, top_k=top)
            except IndexError as exc:
                raise _ServiceError(404, str(exc)) from None
            return 200, {
                "lines": lines,
                "week": week,
                "model_version": self.model_version,
                "rankings": rankings,
            }
        line = _int_param(query, "line")
        try:
            ranking = engine.locate(week, line, top_k=top)
        except IndexError as exc:
            raise _ServiceError(404, str(exc)) from None
        return 200, {
            "line": line,
            "week": week,
            "model_version": self.model_version,
            "ranking": ranking,
        }

    def handle_lifecycle(self, query) -> tuple[int, dict]:
        del query
        # Imported lazily: repro.lifecycle builds on repro.serve, so a
        # module-level import here would be circular.
        from repro.lifecycle.controller import lifecycle_status

        return 200, lifecycle_status(self.registry.root)

    def handle_reload(self, query) -> tuple[int, dict]:
        del query
        try:
            version = self.reload()
        except RuntimeError as exc:
            raise _ServiceError(503, str(exc)) from None
        return 200, {"status": "reloaded", "model_version": version}

    _GET_ROUTES = {
        "/healthz": handle_healthz,
        "/health": handle_health,
        "/metrics": handle_metrics,
        "/trace": handle_trace,
        "/score": handle_score,
        "/dispatch": handle_dispatch,
        "/explain": handle_explain,
        "/triage": handle_triage,
        "/locate": handle_locate,
        "/lifecycle": handle_lifecycle,
    }
    _POST_ROUTES = {"/reload": handle_reload}

    def dispatch_request(self, method: str, target: str) -> tuple[int, dict | str]:
        """Route one request; returns (HTTP status, payload).

        The payload is a JSON-ready dict for most routes; the prometheus
        and flame-text formats return a plain string, which the HTTP
        layer sends as ``text/plain``.
        """
        parts = urlsplit(target)
        routes = self._GET_ROUTES if method == "GET" else self._POST_ROUTES
        handler = routes.get(parts.path)
        if handler is None:
            # Unknown routes never reach the SLO monitor: a scanner
            # probing /favicon.ico must not burn error budget.
            return 404, {"error": f"unknown route {method} {parts.path}"}
        self._requests_total.inc(route=parts.path)
        start = time.perf_counter()
        try:
            result = handler(self, parse_qs(parts.query))
        except _ServiceError as exc:
            result = exc.status, {"error": str(exc)}
        except (KeyError, ValueError) as exc:
            result = 400, {"error": str(exc)}
        elapsed = time.perf_counter() - start
        self._request_seconds.observe(elapsed, route=parts.path)
        self.slo_monitor.observe(parts.path, elapsed, result[0])
        return result


def _int_param(query: dict[str, list[str]], name: str) -> int:
    values = query.get(name)
    if not values:
        raise _ServiceError(400, f"missing query parameter {name!r}")
    try:
        return int(values[0])
    except ValueError:
        raise _ServiceError(
            400, f"query parameter {name!r} must be an integer"
        ) from None


def _int_list_param(query: dict[str, list[str]], name: str) -> list[int]:
    values = query.get(name)
    if not values:
        raise _ServiceError(400, f"missing query parameter {name!r}")
    parts = [p for p in values[0].split(",") if p.strip()]
    if not parts:
        raise _ServiceError(
            400, f"query parameter {name!r} must list at least one integer"
        )
    try:
        return [int(p) for p in parts]
    except ValueError:
        raise _ServiceError(
            400,
            f"query parameter {name!r} must be comma-separated integers",
        ) from None


def _flag_param(query: dict[str, list[str]], name: str) -> bool:
    values = query.get(name)
    if not values:
        return False
    return values[0].strip().lower() in ("1", "true", "yes", "on", "")


def _format_param(query: dict[str, list[str]]) -> str:
    values = query.get("format", ["json"])
    return values[0].strip().lower()


def _scalar(snapshot: dict, name: str) -> float:
    """The unlabelled sample value of a counter/gauge in a snapshot."""
    for sample in snapshot.get(name, {}).get("samples", []):
        if not sample["labels"]:
            return float(sample["value"])
    return 0.0


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter around :meth:`ScoringService.dispatch_request`."""

    service: ScoringService  # set by make_server

    # HTTP/1.1 so connections persist across requests: pollers hit
    # /metrics and /healthz every few seconds, and per-request TCP
    # handshakes would dominate those tiny responses.  Safe because
    # _respond always sends an exact Content-Length.
    protocol_version = "HTTP/1.1"

    def _respond(self, method: str) -> None:
        status, payload = self.service.dispatch_request(method, self.path)
        route = urlsplit(self.path).path
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            if route == "/metrics":
                # Prometheus exposition carries its format version.
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                content_type = "text/plain; charset=utf-8"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # Telemetry and scores are moment-in-time reads; a cached
        # /metrics or /health answer is worse than a slow one.
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._respond("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the operator's reverse proxy's job


def make_server(
    service: ScoringService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server for the service (port 0 = ephemeral).

    The caller owns the lifecycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)
