"""Serving subsystem: model registry, line-week store, scoring service.

The batch pipeline (:mod:`repro.core.pipeline`) trains and scores inside
one process over a live simulation.  This package is the deployment
half of the paper's Fig. 3 loop:

* :mod:`repro.serve.store` -- append-only columnar snapshots of each
  Saturday campaign (mmap ``.npy`` shards + JSON manifest), so scoring
  never re-simulates;
* :mod:`repro.serve.registry` -- versioned, checksummed model bundles
  with activate/rollback;
* :mod:`repro.serve.scoring` -- the sharded scoring engine: store ->
  compiled-ensemble margins -> calibrated P(ticket) -> capacity-bounded
  dispatch list, bit-identical to the batch pipeline;
* :mod:`repro.serve.service` -- a stdlib-only HTTP API over the above.
"""

from repro.serve.cache import DEFAULT_CACHE_ENTRIES, ScoreCache
from repro.serve.registry import ModelBundle, ModelRegistry, RegistryError
from repro.serve.scoring import (
    DEFAULT_SHARD_SIZE,
    ScoringEngine,
    WeekScores,
    score_bundles,
)
from repro.serve.service import ScoringService, make_server
from repro.serve.store import LineWeekStore, StoredWorld, snapshot_result

__all__ = [
    "ModelBundle",
    "ModelRegistry",
    "RegistryError",
    "score_bundles",
    "ScoringEngine",
    "WeekScores",
    "DEFAULT_SHARD_SIZE",
    "ScoreCache",
    "DEFAULT_CACHE_ENTRIES",
    "ScoringService",
    "make_server",
    "LineWeekStore",
    "StoredWorld",
    "snapshot_result",
]
