"""Anonymizing joins producing the learning matrices.

Two shapes of dataset come out of the joined sources:

* **ticket-prediction examples** -- one row per (line, prediction week),
  features encoded from the measurement history at that week, binary label
  ``Tkt(u, t, T)``: did the customer open an edge ticket within the
  horizon (Section 4.1);
* **locator examples** -- one row per resolved truck-roll dispatch,
  features from the most recent line test before the ticket, labels the
  technician's recorded disposition and its major location (Section 6.3).

Identifiers are hashed before the join (footnote 1 of the paper) via
:func:`anonymize_ids`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.features.encoding import EncoderConfig, FeatureSet, LineFeatureEncoder
from repro.netsim.components import disposition_arrays
from repro.netsim.simulator import SimulationResult
from repro.tickets.ticketing import TicketCategory, TicketSource

__all__ = [
    "anonymize_ids",
    "LabeledDataset",
    "build_ticket_dataset",
    "LocatorDataset",
    "build_locator_dataset",
]


def anonymize_ids(line_ids: np.ndarray, salt: str = "nevermind") -> np.ndarray:
    """Hash raw subscriber identifiers into stable anonymous tokens.

    Mirrors the paper's privacy step: *"hashing each customer phone number
    to a unique anonymous identifier prior to joining these datasets"*.
    """
    out = np.empty(len(line_ids), dtype="<U16")
    for i, raw in enumerate(np.asarray(line_ids).astype(int)):
        digest = hashlib.sha256(f"{salt}:{raw}".encode()).hexdigest()
        out[i] = digest[:16]
    return out


@dataclass
class LabeledDataset:
    """Stacked ticket-prediction examples.

    Attributes:
        features: encoded feature matrix over all examples.
        y: binary label -- edge ticket within the horizon.
        line_ids: subscriber line of each example.
        weeks: prediction week of each example.
        days: prediction day (the Saturday) of each example.
        delays: days until the first edge ticket in the horizon, -1 when
            none arrived (powers the Fig-8 urgency analysis).
    """

    features: FeatureSet
    y: np.ndarray
    line_ids: np.ndarray
    weeks: np.ndarray
    days: np.ndarray
    delays: np.ndarray

    @property
    def n_examples(self) -> int:
        return len(self.y)

    def positive_rate(self) -> float:
        """Fraction of examples with a future ticket."""
        return float(np.mean(self.y)) if self.n_examples else 0.0


def build_ticket_dataset(
    result: SimulationResult,
    weeks: tuple[int, ...] | list[int],
    encoder: LineFeatureEncoder | None = None,
    horizon_weeks: int = 4,
    product_pairs: list[tuple[int, int]] | None = None,
) -> LabeledDataset:
    """Assemble (line, week) examples for the given prediction weeks.

    Every line contributes one example per prediction week; positives are
    the lines whose customer opens an edge ticket within
    ``horizon_weeks`` (Section 4.1's labelling).
    """
    if not weeks:
        raise ValueError("need at least one prediction week")
    encoder = encoder or LineFeatureEncoder(EncoderConfig())
    n = result.n_lines
    horizon_days = horizon_weeks * 7

    feature_blocks: list[FeatureSet] = []
    labels: list[np.ndarray] = []
    lines: list[np.ndarray] = []
    week_col: list[np.ndarray] = []
    day_col: list[np.ndarray] = []
    delay_col: list[np.ndarray] = []
    for week in weeks:
        fs = encoder.encode(
            result.measurements,
            int(week),
            result.population,
            result.ticket_log,
            product_pairs=product_pairs,
        )
        day = int(result.measurements.saturday_day[int(week)])
        delays = result.ticket_log.first_edge_ticket_after(n, day, horizon_days)
        feature_blocks.append(fs)
        labels.append((delays >= 0).astype(float))
        lines.append(np.arange(n))
        week_col.append(np.full(n, int(week)))
        day_col.append(np.full(n, day))
        delay_col.append(delays)

    stacked = FeatureSet(
        matrix=np.vstack([fs.matrix for fs in feature_blocks]),
        names=feature_blocks[0].names,
        groups=feature_blocks[0].groups,
        categorical=feature_blocks[0].categorical,
    )
    return LabeledDataset(
        features=stacked,
        y=np.concatenate(labels),
        line_ids=np.concatenate(lines),
        weeks=np.concatenate(week_col),
        days=np.concatenate(day_col),
        delays=np.concatenate(delay_col),
    )


@dataclass
class LocatorDataset:
    """Dispatch examples for the trouble locator.

    Attributes:
        features: line features at the most recent test before the ticket.
        disposition: technician's recorded disposition (catalog index).
        location: major location (0=HN, 1=F2, 2=F1, 3=DS) of that code.
        line_ids: dispatched line per example.
        ticket_days: ticket-open day per example.
    """

    features: FeatureSet
    disposition: np.ndarray
    location: np.ndarray
    line_ids: np.ndarray
    ticket_days: np.ndarray

    @property
    def n_examples(self) -> int:
        return len(self.disposition)

    def disposition_prior(self, n_dispositions: int) -> np.ndarray:
        """Empirical disposition frequencies (the experience model input)."""
        counts = np.bincount(self.disposition, minlength=n_dispositions)
        total = counts.sum()
        return counts / total if total else counts.astype(float)


def build_locator_dataset(
    result: SimulationResult,
    first_day: int,
    last_day: int,
    encoder: LineFeatureEncoder | None = None,
    include_proactive: bool = False,
) -> LocatorDataset:
    """Assemble dispatch examples from tickets opened in [first_day, last_day].

    Only customer-edge tickets that produced a recorded disposition are
    kept (the paper's ground truth).  Features come from the most recent
    line test at or before the ticket day; tickets with no prior test are
    dropped.
    """
    encoder = encoder or LineFeatureEncoder(EncoderConfig())
    measurements = result.measurements
    saturdays = measurements.saturday_day[measurements.filled_weeks]
    filled = measurements.filled_weeks
    location_of = disposition_arrays().location

    # Group tickets by the measurement week that precedes them.
    by_week: dict[int, list] = {}
    for ticket in result.ticket_log.tickets:
        if ticket.category is not TicketCategory.CUSTOMER_EDGE:
            continue
        if not include_proactive and ticket.source is not TicketSource.CUSTOMER:
            continue
        if ticket.recorded_disposition < 0:
            continue
        if not first_day <= ticket.day <= last_day:
            continue
        prior = np.flatnonzero(saturdays <= ticket.day)
        if prior.size == 0:
            continue
        week = int(filled[prior[-1]])
        by_week.setdefault(week, []).append(ticket)

    rows: list[np.ndarray] = []
    dispositions: list[int] = []
    locations: list[int] = []
    lines: list[int] = []
    days: list[int] = []
    template: FeatureSet | None = None
    for week in sorted(by_week):
        fs = encoder.encode(
            measurements, week, result.population, result.ticket_log
        )
        template = fs
        for ticket in by_week[week]:
            rows.append(fs.matrix[ticket.line_id])
            dispositions.append(ticket.recorded_disposition)
            locations.append(int(location_of[ticket.recorded_disposition]))
            lines.append(ticket.line_id)
            days.append(ticket.day)

    if template is None:
        raise ValueError("no eligible dispatches in the requested day range")
    features = FeatureSet(
        matrix=np.vstack(rows),
        names=template.names,
        groups=template.groups,
        categorical=template.categorical,
    )
    return LocatorDataset(
        features=features,
        disposition=np.asarray(dispositions, dtype=int),
        location=np.asarray(locations, dtype=int),
        line_ids=np.asarray(lines, dtype=int),
        ticket_days=np.asarray(days, dtype=int),
    )
