"""Temporal splits mirroring the paper's evaluation layout.

Section 5: *"We use line measurement records from 08/01/09 to 09/31/09 as
our training data, and the data in the four contiguous weeks starting from
10/31/09 as our test data.  The line measurements from 01/01/09 to
07/31/09 are history records for computing time-series features and
customer related features."*

So the timeline decomposes into four contiguous zones:

    [ history | train | selection | test ]

with every prediction week labeled by tickets in the following
``horizon_weeks`` (T = 4 in the paper).  The selection zone is the
"separate test set" the top-N AP feature selection scores candidates on;
keeping it disjoint from the final test zone avoids leaking the evaluation
data into model construction.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TemporalSplit", "paper_style_split"]


@dataclass(frozen=True)
class TemporalSplit:
    """Week indices of each evaluation zone.

    Attributes:
        history_weeks: weeks used only to compute time-series / customer
            features (never as prediction points).
        train_weeks: prediction weeks whose examples train the model.
        selection_weeks: prediction weeks scored during feature selection.
        test_weeks: prediction weeks of the final evaluation.
        horizon_weeks: label horizon T (tickets within T weeks count).
    """

    history_weeks: tuple[int, ...]
    train_weeks: tuple[int, ...]
    selection_weeks: tuple[int, ...]
    test_weeks: tuple[int, ...]
    horizon_weeks: int = 4

    @property
    def horizon_days(self) -> int:
        return self.horizon_weeks * 7

    def validate(self, n_weeks: int) -> None:
        """Check the split fits a simulation of ``n_weeks`` weeks."""
        zones = (
            self.history_weeks + self.train_weeks
            + self.selection_weeks + self.test_weeks
        )
        if not zones:
            raise ValueError("split has no weeks at all")
        if len(set(zones)) != len(zones):
            raise ValueError("split zones overlap")
        if min(zones) < 0:
            raise ValueError("negative week index")
        for week in self.train_weeks + self.selection_weeks + self.test_weeks:
            prediction_day = week * 7 + 5  # the Saturday line test
            if prediction_day + self.horizon_days > n_weeks * 7 - 1:
                raise ValueError(
                    f"prediction week {week} has no full {self.horizon_weeks}-week "
                    f"label horizon inside a {n_weeks}-week simulation"
                )


def paper_style_split(
    n_weeks: int,
    history: int = 8,
    train: int = 4,
    selection: int = 2,
    test: int = 2,
    horizon_weeks: int = 4,
) -> TemporalSplit:
    """Lay out contiguous history/train/selection/test zones.

    The final ``horizon_weeks`` of the simulation are reserved so that
    every test-week prediction has a full label window.

    Raises:
        ValueError: when the simulation is too short for the request.
    """
    needed = history + train + selection + test + horizon_weeks
    if n_weeks < needed:
        raise ValueError(
            f"need at least {needed} weeks "
            f"(history {history} + train {train} + selection {selection} + "
            f"test {test} + horizon {horizon_weeks}), got {n_weeks}"
        )
    cursor = 0
    history_weeks = tuple(range(cursor, cursor + history))
    cursor += history
    train_weeks = tuple(range(cursor, cursor + train))
    cursor += train
    selection_weeks = tuple(range(cursor, cursor + selection))
    cursor += selection
    test_weeks = tuple(range(cursor, cursor + test))
    split = TemporalSplit(
        history_weeks=history_weeks,
        train_weeks=train_weeks,
        selection_weeks=selection_weeks,
        test_weeks=test_weeks,
        horizon_weeks=horizon_weeks,
    )
    split.validate(n_weeks)
    return split
