"""Flat-file exports of the simulated data sources.

The paper's data engineering reality (Section 3.3): measurements, tickets,
dispositions and profiles live in different operational systems and are
exchanged as flat extracts keyed by anonymised subscriber ids.  These
helpers write the simulator's outputs in that shape -- CSV with a header
row -- so they can be loaded into pandas/SQL/spreadsheets without this
package, and so downstream users can plug in their *own* data by matching
the schemas.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.data.joins import anonymize_ids
from repro.measurement.records import FEATURE_NAMES
from repro.netsim.components import DISPOSITIONS, Location
from repro.netsim.profiles import PROFILES
from repro.netsim.simulator import SimulationResult

__all__ = [
    "export_measurements_csv",
    "export_tickets_csv",
    "export_dispatches_csv",
    "export_subscribers_csv",
    "export_all",
]


def _anon_map(result: SimulationResult, salt: str) -> np.ndarray:
    return anonymize_ids(np.arange(result.n_lines), salt=salt)


def export_measurements_csv(
    result: SimulationResult, path: str | Path, salt: str = "nevermind",
    weeks: list[int] | None = None,
) -> int:
    """Write one row per (line, recorded week); returns the row count.

    Missing records appear with ``state = 0`` and empty feature cells,
    exactly how a weekly extract would surface an unreachable modem.
    """
    store = result.measurements
    anon = _anon_map(result, salt)
    week_list = list(store.filled_weeks if weeks is None else weeks)
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["subscriber", "week", "test_day", *FEATURE_NAMES])
        for week in week_list:
            matrix = store.week_matrix(int(week))
            day = int(store.saturday_day[int(week)])
            for line in range(result.n_lines):
                values = [
                    "" if np.isnan(v) else f"{float(v):.6g}"
                    for v in matrix[line]
                ]
                writer.writerow([anon[line], int(week), day, *values])
                rows += 1
    return rows


def export_tickets_csv(
    result: SimulationResult, path: str | Path, salt: str = "nevermind"
) -> int:
    """Write the trouble-ticket log; returns the row count."""
    anon = _anon_map(result, salt)
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "ticket_id", "subscriber", "day", "category", "source",
            "resolved_day", "recorded_disposition",
        ])
        for ticket in result.ticket_log.tickets:
            code = (
                DISPOSITIONS[ticket.recorded_disposition].code
                if ticket.recorded_disposition >= 0
                else ""
            )
            writer.writerow([
                ticket.ticket_id, anon[ticket.line_id], ticket.day,
                ticket.category.value, ticket.source.value,
                ticket.resolved_day if ticket.resolved_day >= 0 else "",
                code,
            ])
            rows += 1
    return rows


def export_dispatches_csv(
    result: SimulationResult, path: str | Path, salt: str = "nevermind"
) -> int:
    """Write the dispatch/disposition notes; returns the row count."""
    anon = _anon_map(result, salt)
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "ticket_id", "subscriber", "day", "truck_roll",
            "recorded_disposition", "location", "fixed",
        ])
        for record in result.dispatcher.records:
            if record.recorded_disposition >= 0:
                disposition = DISPOSITIONS[record.recorded_disposition]
                code = disposition.code
                location = Location(disposition.location).name
            else:
                code = "no-trouble-found"
                location = ""
            writer.writerow([
                record.ticket_id, anon[record.line_id], record.day,
                int(record.truck_roll), code, location, int(record.fixed),
            ])
            rows += 1
    return rows


def export_subscribers_csv(
    result: SimulationResult, path: str | Path, salt: str = "nevermind"
) -> int:
    """Write the subscriber-profile table; returns the row count."""
    anon = _anon_map(result, salt)
    population = result.population
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([
            "subscriber", "profile", "down_kbps", "up_kbps", "dslam", "bras",
        ])
        for line in range(result.n_lines):
            profile = PROFILES[population.profile_idx[line]]
            writer.writerow([
                anon[line], profile.name, profile.down_kbps, profile.up_kbps,
                int(population.dslam_idx[line]), int(population.bras_idx[line]),
            ])
            rows += 1
    return rows


def export_all(
    result: SimulationResult, directory: str | Path, salt: str = "nevermind"
) -> dict[str, int]:
    """Write all four extracts into ``directory``; returns row counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        "measurements": export_measurements_csv(
            result, directory / "measurements.csv", salt
        ),
        "tickets": export_tickets_csv(result, directory / "tickets.csv", salt),
        "dispatches": export_dispatches_csv(
            result, directory / "dispatches.csv", salt
        ),
        "subscribers": export_subscribers_csv(
            result, directory / "subscribers.csv", salt
        ),
    }
