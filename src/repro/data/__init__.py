"""Dataset assembly: joining the simulated data sources, paper style.

Section 3.3: the line measurements, trouble tickets, disposition notes and
subscriber profiles live in different systems and are joined under hashed
anonymous identifiers.  This package rebuilds that join against the
simulator's outputs:

* :mod:`repro.data.splits` -- the paper's temporal train / selection /
  test windows with a 4-week label horizon;
* :mod:`repro.data.joins` -- labeled matrices for the ticket predictor
  (line-week examples) and the trouble locator (dispatch examples), plus
  the anonymizing id hash.
"""

from repro.data.joins import (
    LabeledDataset,
    LocatorDataset,
    anonymize_ids,
    build_locator_dataset,
    build_ticket_dataset,
)
from repro.data.splits import TemporalSplit, paper_style_split

__all__ = [
    "LabeledDataset",
    "LocatorDataset",
    "anonymize_ids",
    "build_locator_dataset",
    "build_ticket_dataset",
    "TemporalSplit",
    "paper_style_split",
]
