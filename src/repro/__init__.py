"""NEVERMIND reproduction: proactive DSL trouble detection and location.

A from-scratch Python reimplementation of *"NEVERMIND, the Problem Is
Already Fixed: Proactively Detecting and Troubleshooting Customer DSL
Problems"* (Jin, Duffield, Gerber, Haffner, Sen, Zhang -- ACM CoNEXT
2010), including the DSL access-network and customer-care simulator that
stands in for the paper's proprietary ISP data.

Quick start::

    from repro import (
        DslSimulator, SimulationConfig, PopulationConfig,
        TicketPredictor, PredictorConfig, paper_style_split,
        evaluate_predictions,
    )

    sim = DslSimulator(SimulationConfig(
        n_weeks=22, population=PopulationConfig(n_lines=6000),
        fault_rate_scale=3.0,
    ))
    result = sim.run()
    split = paper_style_split(22, history=8, train=3, selection=2, test=1)
    predictor = TicketPredictor(PredictorConfig(capacity=150)).fit(result, split)
    week = split.test_weeks[0]
    outcome = evaluate_predictions(result, predictor.rank_week(result, week), week)
    print("accuracy@150:", outcome.accuracy_at(150))

Package map (see DESIGN.md for the experiment index):

* :mod:`repro.netsim` -- plant simulator (topology, physics, faults);
* :mod:`repro.measurement` -- weekly Table-2 line tests;
* :mod:`repro.tickets` -- customers, tickets, outages/IVR, ATDS;
* :mod:`repro.traffic` -- per-customer BRAS byte counts;
* :mod:`repro.data` -- temporal splits and labeled joins;
* :mod:`repro.ml` -- BStump boosting, calibration, logistic regression,
  PCA and ranking metrics, all from scratch;
* :mod:`repro.features` -- Table-3 encoding and top-N AP selection;
* :mod:`repro.core` -- the ticket predictor, trouble locator, Section-5
  analyses, and the closed operational loop;
* :mod:`repro.parallel` -- the ``parallel_map`` fabric (``REPRO_WORKERS``)
  the locator and the feature-selection sweep fan out over;
* :mod:`repro.serve` -- the serving subsystem: versioned model registry,
  append-only line-week store, sharded scoring engine, and the stdlib
  HTTP scoring service (``python -m repro serve``);
* :mod:`repro.fleet` -- plant-level triage: cross-line fault grouping,
  network-vs-premise classification, and hotspot dispatch suppression
  (``python -m repro triage``).
"""

from repro.core.analysis import (
    OutageExplanation,
    PredictionOutcome,
    accuracy_curve,
    evaluate_predictions,
    explain_incorrect_by_absence,
    explain_incorrect_by_outage,
    ground_truth_problem_fraction,
    missed_ticket_fraction,
    urgency_cdf,
)
from repro.core.locator import (
    CombinedLocator,
    ExperienceModel,
    FlatLocator,
    LocatorConfig,
    rank_improvement_by_bin,
    ranks_of_truth,
    tests_to_locate,
)
from repro.core.capacity import CapacityEconomics, optimal_capacity, value_curve
from repro.core.pipeline import NevermindPipeline, PipelineConfig, WeeklyReport
from repro.core.predictor import PredictorConfig, TicketPredictor
from repro.core.reporting import EvaluationReport, full_evaluation_report
from repro.core.triage import (
    DEFAULT_TEST_MINUTES,
    cost_aware_order,
    expected_search_cost,
    expected_tests,
)
from repro.data.export import export_all
from repro.data.joins import (
    LabeledDataset,
    LocatorDataset,
    anonymize_ids,
    build_locator_dataset,
    build_ticket_dataset,
)
from repro.data.splits import TemporalSplit, paper_style_split
from repro.features.encoding import EncoderConfig, FeatureSet, LineFeatureEncoder
from repro.netsim.population import Population, PopulationConfig, build_population
from repro.parallel import parallel_map, worker_count
from repro.netsim.scenarios import scenario, scenario_names
from repro.netsim.simulator import (
    DslSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.fleet import (
    FaultCluster,
    TriageConfig,
    TriagePlan,
    TriageResult,
    evaluate_plan,
    find_clusters,
    plan_dispatches,
)
from repro.netsim.groupfaults import (
    GroupFaultConfig,
    GroupFaultModel,
    GroupFaultSchedule,
)
from repro.tickets.churn import ChurnConfig, ChurnReport, estimate_churn
from repro.serve import (
    LineWeekStore,
    ModelBundle,
    ModelRegistry,
    ScoringEngine,
    ScoringService,
    StoredWorld,
    snapshot_result,
)

__version__ = "1.0.0"

__all__ = [
    "OutageExplanation",
    "PredictionOutcome",
    "accuracy_curve",
    "evaluate_predictions",
    "explain_incorrect_by_absence",
    "explain_incorrect_by_outage",
    "ground_truth_problem_fraction",
    "missed_ticket_fraction",
    "urgency_cdf",
    "CombinedLocator",
    "ExperienceModel",
    "FlatLocator",
    "LocatorConfig",
    "rank_improvement_by_bin",
    "ranks_of_truth",
    "tests_to_locate",
    "NevermindPipeline",
    "PipelineConfig",
    "WeeklyReport",
    "PredictorConfig",
    "TicketPredictor",
    "LabeledDataset",
    "LocatorDataset",
    "anonymize_ids",
    "build_locator_dataset",
    "build_ticket_dataset",
    "TemporalSplit",
    "paper_style_split",
    "EncoderConfig",
    "FeatureSet",
    "LineFeatureEncoder",
    "Population",
    "PopulationConfig",
    "build_population",
    "DslSimulator",
    "SimulationConfig",
    "SimulationResult",
    "CapacityEconomics",
    "optimal_capacity",
    "value_curve",
    "EvaluationReport",
    "full_evaluation_report",
    "DEFAULT_TEST_MINUTES",
    "cost_aware_order",
    "expected_search_cost",
    "expected_tests",
    "export_all",
    "scenario",
    "scenario_names",
    "ChurnConfig",
    "ChurnReport",
    "estimate_churn",
    "GroupFaultConfig",
    "GroupFaultModel",
    "GroupFaultSchedule",
    "TriageConfig",
    "FaultCluster",
    "TriageResult",
    "TriagePlan",
    "find_clusters",
    "plan_dispatches",
    "evaluate_plan",
    "parallel_map",
    "worker_count",
    "LineWeekStore",
    "ModelBundle",
    "ModelRegistry",
    "ScoringEngine",
    "ScoringService",
    "StoredWorld",
    "snapshot_result",
    "__version__",
]
