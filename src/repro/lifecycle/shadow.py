"""Shadow champion--challenger evaluation and the promotion gate.

Before a freshly trained challenger may serve, it is scored *in shadow*:
side by side with the active champion over the most recent weeks whose
label horizon has fully elapsed, through the same sharded serving path
real campaigns use (:func:`repro.serve.scoring.score_bundles`, which
encodes each line-shard once and folds both ensembles over it -- so
shadow mode costs far less than two full scoring runs).

Promotion is *non-inferiority* with bootstrap confidence.  With
:math:`\\Delta_w = P^{chal}_w(N) - P^{champ}_w(N)` the per-week
precision-at-budget delta, a paired bootstrap resamples the N dispatch
slots of each week (the same slot draw for both models, preserving the
pairing) and recomputes the mean delta; the challenger passes when the
lower :math:`(1-\\alpha)` percentile bound satisfies

.. math::

    \\underline{\\Delta} \\;\\ge\\; -m

for the configured margin ``m``.  A genuinely better challenger clears
this easily; a noisy tie clears it within the margin; a regression is
held back with quantified confidence instead of a point-estimate coin
flip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.lifecycle.config import LifecycleConfig
from repro.ml.metrics import top_n_average_precision
from repro.obs.tracing import span
from repro.serve.registry import ModelBundle
from repro.serve.scoring import DEFAULT_SHARD_SIZE, score_bundles
from repro.serve.store import StoredWorld

__all__ = ["ShadowReport", "ShadowEvaluator", "GateDecision", "PromotionGate"]


@dataclass(frozen=True)
class ShadowReport:
    """One challenger's shadow scorecard against the champion.

    Attributes:
        weeks: evaluated weeks (each with a complete label horizon).
        capacity: the dispatch budget N the precisions are taken at.
        champion_precision / challenger_precision: mean precision@N.
        precision_delta: challenger - champion (point estimate).
        delta_ci_low / delta_ci_high: paired-bootstrap confidence bounds
            on the delta.
        champion_ap / challenger_ap: mean AP@N over the weeks.
        per_week: one dict per week with both models' precision@N/AP@N.
        shadow_seconds: wall time of the shared-encode scoring runs.
        bootstrap_samples / confidence: the gate's statistics settings.
    """

    weeks: tuple[int, ...]
    capacity: int
    champion_precision: float
    challenger_precision: float
    precision_delta: float
    delta_ci_low: float
    delta_ci_high: float
    champion_ap: float
    challenger_ap: float
    shadow_seconds: float
    bootstrap_samples: int
    confidence: float
    per_week: tuple[dict[str, Any], ...] = field(default=())

    def to_dict(self) -> dict[str, Any]:
        return {
            "weeks": list(self.weeks),
            "capacity": self.capacity,
            "champion_precision": self.champion_precision,
            "challenger_precision": self.challenger_precision,
            "precision_delta": self.precision_delta,
            "delta_ci_low": self.delta_ci_low,
            "delta_ci_high": self.delta_ci_high,
            "champion_ap": self.champion_ap,
            "challenger_ap": self.challenger_ap,
            "shadow_seconds": self.shadow_seconds,
            "bootstrap_samples": self.bootstrap_samples,
            "confidence": self.confidence,
            "per_week": [dict(w) for w in self.per_week],
        }


class ShadowEvaluator:
    """Scores challenger vs champion on stored weeks with known labels."""

    def __init__(
        self,
        world: StoredWorld,
        capacity: int,
        config: LifecycleConfig,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int | None = None,
    ):
        self.world = world
        self.capacity = capacity
        self.config = config
        self.shard_size = shard_size
        self.workers = workers

    def evaluate(
        self,
        champion: ModelBundle,
        challenger: ModelBundle,
        weeks: list[int],
        labels: dict[int, np.ndarray],
    ) -> ShadowReport:
        """Shadow-score both bundles and summarise the deltas.

        Args:
            champion: the active bundle.
            challenger: the candidate bundle.
            weeks: stored weeks to evaluate; every week needs an entry in
                ``labels``.
            labels: per-week boolean vectors -- did line ``i`` raise an
                edge ticket within the horizon after that week's test?
        """
        if not weeks:
            raise ValueError("need at least one shadow-evaluation week")
        missing = [w for w in weeks if w not in labels]
        if missing:
            raise ValueError(f"no labels for shadow weeks {missing}")
        capacity = min(self.capacity, self.world.n_lines)

        champ_top: list[np.ndarray] = []  # per-week top-N hit indicators
        chal_top: list[np.ndarray] = []
        per_week: list[dict[str, Any]] = []
        champ_ap: list[float] = []
        chal_ap: list[float] = []
        t0 = time.perf_counter()
        with span("lifecycle.shadow", weeks=len(weeks)):
            for week in weeks:
                scores = score_bundles(
                    {"champion": champion, "challenger": challenger},
                    self.world,
                    week,
                    shard_size=self.shard_size,
                    workers=self.workers,
                )
                hits = np.asarray(labels[week], dtype=bool)
                row: dict[str, Any] = {"week": int(week)}
                for name, top_list, ap_list in (
                    ("champion", champ_top, champ_ap),
                    ("challenger", chal_top, chal_ap),
                ):
                    ranked = np.argsort(-scores[name], kind="stable")
                    top_hits = hits[ranked[:capacity]].astype(float)
                    top_list.append(top_hits)
                    ap = top_n_average_precision(
                        hits.astype(float), capacity, scores=scores[name]
                    )
                    ap_list.append(ap)
                    row[f"{name}_precision"] = float(top_hits.mean())
                    row[f"{name}_ap"] = float(ap)
                per_week.append(row)
        shadow_seconds = time.perf_counter() - t0

        champion_precision = float(np.mean([h.mean() for h in champ_top]))
        challenger_precision = float(np.mean([h.mean() for h in chal_top]))
        ci_low, ci_high = self._bootstrap_delta_ci(champ_top, chal_top)
        return ShadowReport(
            weeks=tuple(int(w) for w in weeks),
            capacity=capacity,
            champion_precision=champion_precision,
            challenger_precision=challenger_precision,
            precision_delta=challenger_precision - champion_precision,
            delta_ci_low=ci_low,
            delta_ci_high=ci_high,
            champion_ap=float(np.mean(champ_ap)),
            challenger_ap=float(np.mean(chal_ap)),
            shadow_seconds=shadow_seconds,
            bootstrap_samples=self.config.bootstrap_samples,
            confidence=self.config.confidence,
            per_week=tuple(per_week),
        )

    def _bootstrap_delta_ci(
        self, champ_top: list[np.ndarray], chal_top: list[np.ndarray]
    ) -> tuple[float, float]:
        """Paired bootstrap over dispatch slots, seeded for determinism.

        Each resample draws N slot indices per week *once* and applies
        them to both models' top-N hit vectors, so the week-level pairing
        (same plant, same Saturday) is preserved in the delta
        distribution.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n_weeks = len(champ_top)
        deltas = np.empty(cfg.bootstrap_samples)
        for b in range(cfg.bootstrap_samples):
            total = 0.0
            for w in range(n_weeks):
                n = len(champ_top[w])
                idx = rng.integers(0, n, size=n)
                total += chal_top[w][idx].mean() - champ_top[w][idx].mean()
            deltas[b] = total / n_weeks
        alpha = 1.0 - cfg.confidence
        low = float(np.percentile(deltas, 100 * (alpha / 2)))
        high = float(np.percentile(deltas, 100 * (1 - alpha / 2)))
        return low, high


@dataclass(frozen=True)
class GateDecision:
    """The promotion gate's verdict on one shadow report.

    Attributes:
        promote: activate the challenger.
        reason: ``non_inferior`` | ``inferior`` | ``forced``.
        detail: human-readable explanation citing the interval.
    """

    promote: bool
    reason: str
    detail: str


class PromotionGate:
    """Non-inferiority test over a :class:`ShadowReport`."""

    def __init__(self, config: LifecycleConfig):
        self.config = config

    def decide(self, report: ShadowReport) -> GateDecision:
        margin = self.config.non_inferiority_margin
        bound = (
            f"delta {report.precision_delta:+.4f}, "
            f"{report.confidence:.0%} CI "
            f"[{report.delta_ci_low:+.4f}, {report.delta_ci_high:+.4f}], "
            f"margin {margin:.4f}"
        )
        if report.delta_ci_low >= -margin:
            return GateDecision(
                promote=True, reason="non_inferior",
                detail=f"challenger is non-inferior at budget: {bound}",
            )
        return GateDecision(
            promote=False, reason="inferior",
            detail=f"challenger may regress precision at budget: {bound}",
        )
