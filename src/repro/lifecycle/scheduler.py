"""The retrain scheduler: *when* should a challenger be trained?

Two triggers, mirroring Section 4's weekly re-ranking discipline and the
drift evidence of :mod:`repro.core.drift`:

* **cadence** -- at least every ``cadence_weeks`` since the last retrain
  attempt (promoted or not), the scheduled refresh;
* **drift** -- earlier than cadence when the live loop's own telemetry
  (precision decay from the launch baseline, or calibration error of the
  submitted lines) crosses the configured thresholds.

The scheduler is deliberately pure bookkeeping: it looks at week numbers
and :class:`~repro.core.drift.LiveDriftSignals` and answers with a
:class:`RetrainDecision`; training, evaluation and promotion belong to
the controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.drift import LiveDriftSignals
from repro.lifecycle.config import LifecycleConfig

__all__ = ["RetrainDecision", "RetrainScheduler"]


@dataclass(frozen=True)
class RetrainDecision:
    """Whether a retrain is due this week, and why.

    Attributes:
        due: train a challenger now.
        reason: ``cadence`` | ``precision_drift`` | ``calibration_drift``,
            or ``none`` when not due.
        detail: the triggering measurement, for the decision log.
    """

    due: bool
    reason: str = "none"
    detail: str = ""


class RetrainScheduler:
    """Decides retrain timing from cadence and live drift signals."""

    def __init__(self, config: LifecycleConfig, trained_at: int):
        """Args:
            config: lifecycle knobs (cadence, thresholds, windows).
            trained_at: week the current champion was trained.
        """
        self.config = config
        self.last_retrain_week = trained_at

    def decide(
        self, week: int, signals: LiveDriftSignals | None
    ) -> RetrainDecision:
        """The retrain decision for the week just completed.

        Drift triggers take precedence over cadence in the recorded
        reason (they fire earlier or at worst simultaneously), and they
        respect ``drift_cooldown_weeks`` so one bad week cannot retrain
        twice in a row on the same evidence.
        """
        cfg = self.config
        since = week - self.last_retrain_week
        cooled = since >= cfg.drift_cooldown_weeks
        if signals is not None and cooled:
            if signals.relative_drop >= cfg.drift_relative_drop:
                return self._due(
                    week, "precision_drift",
                    f"live precision fell {signals.relative_drop:.0%} from "
                    f"baseline {signals.baseline_precision:.3f}",
                )
            if signals.calibration_drift >= cfg.drift_calibration_threshold:
                return self._due(
                    week, "calibration_drift",
                    f"mean |predicted - realized| = "
                    f"{signals.calibration_drift:.3f} over the recent window",
                )
        if cfg.cadence_weeks > 0 and since >= cfg.cadence_weeks:
            return self._due(
                week, "cadence", f"{since} weeks since last retrain"
            )
        return RetrainDecision(due=False)

    def _due(self, week: int, reason: str, detail: str) -> RetrainDecision:
        self.last_retrain_week = week
        return RetrainDecision(due=True, reason=reason, detail=detail)
