"""Configuration of the continuous-training loop.

One frozen dataclass carries every lifecycle knob so a whole deployment
policy -- how eagerly to retrain, how sceptically to promote, how fast to
back out -- is a single serialisable value that the decision log can
record verbatim alongside each decision it produced.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.ml.boostexter import TRAIN_BACKENDS

__all__ = ["LifecycleConfig"]


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the scheduler, shadow evaluator, gate, and watchdog.

    Attributes:
        cadence_weeks: retrain at least every this many weeks (the
            paper's "every Saturday" cadence generalised; 0 disables the
            cadence trigger and leaves only drift triggers).
        drift_relative_drop: trigger a retrain when live precision has
            fallen by this fraction from the deployed model's launch
            baseline (see :func:`repro.core.drift.live_drift_signals`).
        drift_calibration_threshold: trigger a retrain when the mean
            |predicted P - realized precision| over the recent window
            exceeds this.
        drift_baseline_window: live weeks forming the launch baseline.
        drift_recent_window: live weeks forming the current level.
        drift_cooldown_weeks: minimum weeks between drift-triggered
            retrains, so a noisy week cannot thrash the trainer.
        shadow_weeks: how many recent label-complete weeks the challenger
            is shadow-scored on, side by side with the champion.
        bootstrap_samples: paired bootstrap resamples behind the
            promotion gate's confidence interval.
        confidence: two-sided confidence level of that interval.
        non_inferiority_margin: the challenger is promotable when the
            lower confidence bound of (challenger - champion)
            precision-at-budget is above ``-margin``.
        watchdog_drop: post-promotion, a live week counts as a strike
            when its precision falls below ``(1 - drop)`` of the
            promotion-time baseline.
        watchdog_patience: consecutive strikes before automatic rollback.
        seed: bootstrap RNG seed (decisions must be reproducible).
        challenger_backend: stump-search backend for challenger retrains
            ("hist" by default: lifecycle retrains happen on the weekly
            serving path, where the histogram backend's speed matters
            most; the shadow gate judges the result either way).
        challenger_bins: histogram bin budget for challenger retrains
            (ignored by the exact backend).
    """

    cadence_weeks: int = 4
    drift_relative_drop: float = 0.25
    drift_calibration_threshold: float = 0.15
    drift_baseline_window: int = 3
    drift_recent_window: int = 2
    drift_cooldown_weeks: int = 1
    shadow_weeks: int = 3
    bootstrap_samples: int = 200
    confidence: float = 0.9
    non_inferiority_margin: float = 0.02
    watchdog_drop: float = 0.4
    watchdog_patience: int = 2
    seed: int = 2010
    challenger_backend: str = "hist"
    challenger_bins: int = 256

    def __post_init__(self) -> None:
        if self.cadence_weeks < 0:
            raise ValueError("cadence_weeks must be >= 0")
        if not 0 < self.confidence < 1:
            raise ValueError("confidence must be in (0, 1)")
        if not 0 <= self.watchdog_drop < 1:
            raise ValueError("watchdog_drop must be in [0, 1)")
        if self.watchdog_patience < 1:
            raise ValueError("watchdog_patience must be >= 1")
        if self.shadow_weeks < 1:
            raise ValueError("shadow_weeks must be >= 1")
        if self.bootstrap_samples < 1:
            raise ValueError("bootstrap_samples must be >= 1")
        if self.non_inferiority_margin < 0:
            raise ValueError("non_inferiority_margin must be >= 0")
        if self.challenger_backend not in TRAIN_BACKENDS:
            raise ValueError(
                f"challenger_backend must be one of {TRAIN_BACKENDS}, "
                f"got {self.challenger_backend!r}"
            )
        if self.challenger_bins < 2:
            raise ValueError("challenger_bins must be >= 2")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)
