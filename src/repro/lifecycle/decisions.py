"""The signed decision log: an append-only, hash-chained audit trail.

Every lifecycle action -- bootstrap, retrain, promote, hold, rollback --
appends one JSON record to a ``.jsonl`` file.  Records are chained the
way a ledger is: each carries the SHA-256 of its canonicalised content
*including the previous record's hash*, so editing, dropping, or
reordering any historical decision invalidates every later hash and
:meth:`DecisionLog.verify` pinpoints the first broken link.  (No key
material is involved -- the "signature" is tamper-*evidence*, not
tamper-*proofing*, which is the right tool for a single-operator audit
trail.)

The log lives next to the model registry by default
(``<registry_root>/LIFECYCLE.jsonl``) so the ``/lifecycle`` service
endpoint and ``repro lifecycle status`` can reconstruct the full story
from the serving directories alone.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["DecisionRecord", "DecisionLog", "DEFAULT_LOG_NAME"]

#: File name of the decision log inside a registry root.
DEFAULT_LOG_NAME = "LIFECYCLE.jsonl"

_GENESIS = "0" * 64


def _canonical(payload: dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class DecisionRecord:
    """One chained lifecycle decision.

    Attributes:
        seq: 0-based position in the log.
        action: ``bootstrap`` | ``retrain`` | ``promote`` | ``hold`` |
            ``rollback`` (free-form for forward compatibility).
        week: the pipeline week the decision was taken at.
        at: wall-clock timestamp.
        details: free-form JSON evidence (shadow metrics, gate verdict,
            cited registry versions/events, ...).
        prev_hash: hash of the preceding record (64 zeros at genesis).
        hash: SHA-256 over (prev_hash + canonical body).
    """

    seq: int
    action: str
    week: int
    at: float
    details: dict[str, Any]
    prev_hash: str
    hash: str

    def body(self) -> dict[str, Any]:
        """The hashed content (everything except ``hash`` itself)."""
        return {
            "seq": self.seq,
            "action": self.action,
            "week": self.week,
            "at": self.at,
            "details": self.details,
            "prev_hash": self.prev_hash,
        }

    def expected_hash(self) -> str:
        return hashlib.sha256(_canonical(self.body()).encode()).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        return {**self.body(), "hash": self.hash}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DecisionRecord":
        return cls(
            seq=int(payload["seq"]),
            action=str(payload["action"]),
            week=int(payload["week"]),
            at=float(payload["at"]),
            details=dict(payload["details"]),
            prev_hash=str(payload["prev_hash"]),
            hash=str(payload["hash"]),
        )


class DecisionLog:
    """Append-only JSONL decision ledger with hash-chain verification."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._records: list[DecisionRecord] = []
        if self.path.exists():
            for line in self.path.read_text().splitlines():
                if line.strip():
                    self._records.append(
                        DecisionRecord.from_dict(json.loads(line))
                    )

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[DecisionRecord]:
        return list(self._records)

    @property
    def head_hash(self) -> str:
        return self._records[-1].hash if self._records else _GENESIS

    def append(
        self, action: str, week: int, **details: Any
    ) -> DecisionRecord:
        """Chain and persist one decision; returns the sealed record."""
        body = {
            "seq": len(self._records),
            "action": action,
            "week": int(week),
            "at": time.time(),
            "details": details,
            "prev_hash": self.head_hash,
        }
        digest = hashlib.sha256(_canonical(body).encode()).hexdigest()
        record = DecisionRecord(hash=digest, **body)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(_canonical(record.to_dict()) + "\n")
        self._records.append(record)
        return record

    def verify(self) -> list[str]:
        """Check the whole chain; returns problems (empty = intact)."""
        problems: list[str] = []
        prev = _GENESIS
        for i, record in enumerate(self._records):
            if record.seq != i:
                problems.append(
                    f"record {i}: sequence says {record.seq}, expected {i}"
                )
            if record.prev_hash != prev:
                problems.append(
                    f"record {i}: prev_hash does not match record {i - 1}"
                )
            if record.hash != record.expected_hash():
                problems.append(f"record {i}: content hash mismatch")
            prev = record.hash
        return problems

    def to_dicts(self) -> list[dict[str, Any]]:
        return [r.to_dict() for r in self._records]
