"""Model lifecycle subsystem: the loop that keeps the champion honest.

The serving stack (:mod:`repro.serve`) answers "score this week with the
active model"; this package answers "which model *should* be active, and
when does it change".  It wires four pieces into a closed loop driven by
the pipeline's weekly hook:

- :class:`~repro.lifecycle.scheduler.RetrainScheduler` -- cadence- and
  drift-triggered challenger training;
- :class:`~repro.lifecycle.shadow.ShadowEvaluator` /
  :class:`~repro.lifecycle.shadow.PromotionGate` -- side-by-side scoring
  on label-complete weeks plus a bootstrap non-inferiority test;
- :class:`~repro.lifecycle.decisions.DecisionLog` -- a hash-chained
  audit trail of every bootstrap / retrain / promote / hold / rollback;
- :class:`~repro.lifecycle.watchdog.PromotionWatchdog` -- post-promotion
  live monitoring with automatic registry rollback.

:class:`~repro.lifecycle.controller.LifecycleController` is the
conductor; ``repro lifecycle run|status`` and the service's
``/lifecycle`` route are the operator's windows into it.
"""

from repro.lifecycle.config import LifecycleConfig
from repro.lifecycle.controller import (
    LifecycleController,
    lifecycle_status,
    shadow_labels,
)
from repro.lifecycle.decisions import (
    DEFAULT_LOG_NAME,
    DecisionLog,
    DecisionRecord,
)
from repro.lifecycle.scheduler import RetrainDecision, RetrainScheduler
from repro.lifecycle.shadow import (
    GateDecision,
    PromotionGate,
    ShadowEvaluator,
    ShadowReport,
)
from repro.lifecycle.watchdog import PromotionWatchdog, WatchdogVerdict

__all__ = [
    "LifecycleConfig",
    "LifecycleController",
    "lifecycle_status",
    "shadow_labels",
    "DecisionLog",
    "DecisionRecord",
    "DEFAULT_LOG_NAME",
    "RetrainDecision",
    "RetrainScheduler",
    "GateDecision",
    "PromotionGate",
    "ShadowEvaluator",
    "ShadowReport",
    "PromotionWatchdog",
    "WatchdogVerdict",
]
