"""The post-promotion watchdog: catch what the shadow gate could not.

Shadow evaluation scores a challenger on *past* weeks; a challenger can
pass the gate and still regress live -- the plant moved, the shadow weeks
were unrepresentative, or the gate's margin absorbed a real decline.
The watchdog is the second line of defence: it observes every live
weekly report after a promotion, compares the realized precision against
the promotion-time baseline, and -- after ``patience`` consecutive weeks
below ``(1 - drop)`` of that baseline -- tells the controller to roll
back.  Requiring *consecutive* strikes makes a single noisy Saturday
harmless while a sustained regression still triggers within
``patience`` weeks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["WatchdogVerdict", "PromotionWatchdog"]


@dataclass(frozen=True)
class WatchdogVerdict:
    """One week's watchdog assessment.

    Attributes:
        rollback: the regression is sustained -- back out now.
        strike: this week counted against the promoted model.
        precision: the live precision observed.
        floor: the precision floor the week was held to.
    """

    rollback: bool
    strike: bool
    precision: float
    floor: float


class PromotionWatchdog:
    """Counts consecutive sub-floor weeks after a promotion."""

    def __init__(self, baseline_precision: float, drop: float, patience: int):
        """Args:
            baseline_precision: precision level the promotion was judged
                against (the champion's shadow precision at the gate).
            drop: tolerated relative decline before a week is a strike.
            patience: consecutive strikes that trigger rollback.
        """
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0 <= drop < 1:
            raise ValueError("drop must be in [0, 1)")
        self.baseline = float(baseline_precision)
        self.floor = (1.0 - drop) * self.baseline
        self.patience = patience
        self.strikes = 0
        self.weeks_observed = 0

    def observe(self, precision: float) -> WatchdogVerdict:
        """Feed one live week's precision; returns the verdict."""
        self.weeks_observed += 1
        strike = precision < self.floor
        self.strikes = self.strikes + 1 if strike else 0
        return WatchdogVerdict(
            rollback=self.strikes >= self.patience,
            strike=strike,
            precision=float(precision),
            floor=self.floor,
        )

    def state(self) -> dict[str, Any]:
        """Serialisable state for status endpoints."""
        return {
            "baseline_precision": self.baseline,
            "floor": self.floor,
            "patience": self.patience,
            "strikes": self.strikes,
            "weeks_observed": self.weeks_observed,
        }
