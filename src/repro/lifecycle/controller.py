"""The lifecycle controller: the closed detect-refit-validate-deploy loop.

Hangs off :class:`~repro.core.pipeline.NevermindPipeline`'s
``on_week_end`` hook and runs the weekly operational cadence end to end:

1. **observe** -- every live week's realized precision and calibration
   drift feed :func:`repro.core.drift.live_drift_signals`;
2. **schedule** -- the :class:`~repro.lifecycle.scheduler.RetrainScheduler`
   triggers a challenger train on cadence or when drift crosses the
   configured thresholds;
3. **shadow** -- the challenger is published (inactive) and scored next
   to the champion over recent label-complete weeks through the shared-
   encode sharded serving path;
4. **gate** -- the bootstrap non-inferiority test decides promote/hold;
   a promotion activates through the registry *and* swaps the pipeline's
   serving predictor, all cited in the hash-chained decision log;
5. **watch** -- after a promotion, the watchdog compares live precision
   to the promotion-time baseline and rolls back automatically on a
   sustained regression.

Every decision lands in three places that must agree: the registry
manifest (versions + events), the obs metrics registry (counters and
shadow-delta gauges), and the signed decision log that ``/lifecycle``
and ``repro lifecycle status`` render.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.drift import live_drift_signals
from repro.core.pipeline import NevermindPipeline, WeeklyReport
from repro.lifecycle.config import LifecycleConfig
from repro.lifecycle.decisions import DEFAULT_LOG_NAME, DecisionLog
from repro.lifecycle.scheduler import RetrainDecision, RetrainScheduler
from repro.lifecycle.shadow import PromotionGate, ShadowEvaluator, ShadowReport
from repro.lifecycle.watchdog import PromotionWatchdog
from repro.obs.log import get_logger, kv
from repro.obs.metrics import get_registry
from repro.serve.registry import ModelBundle
from repro.serve.scoring import DEFAULT_SHARD_SIZE
from repro.serve.store import StoredWorld

__all__ = ["LifecycleController", "lifecycle_status", "shadow_labels"]

LOG = get_logger("lifecycle")


class LifecycleController:
    """Drives scheduled retraining, shadow gating, and auto-rollback."""

    def __init__(
        self,
        pipeline: NevermindPipeline,
        config: LifecycleConfig | None = None,
        decision_log: str | Path | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int | None = None,
        history=None,
    ):
        """Args:
            pipeline: a proactive loop with both a line-week ``store``
                (shadow scoring re-reads it) and a model ``registry``
                (promotion/rollback move its manifest) attached.
            config: lifecycle policy; defaults to :class:`LifecycleConfig`.
            decision_log: path of the signed decision log; defaults to
                ``LIFECYCLE.jsonl`` inside the registry root.
            shard_size / workers: shadow scoring fan-out (same semantics
                as the serving engine).
            history: optional flight recorder
                (:class:`repro.obs.history.HistoryStore`); every
                lifecycle decision appends a ``lifecycle_decision``
                record next to the signed log entry.  Defaults to the
                pipeline's own recorder so one store carries both the
                weekly and the decision series.
        """
        if pipeline.store is None or pipeline.registry is None:
            raise ValueError(
                "the lifecycle controller needs a pipeline with both a "
                "line-week store and a model registry attached"
            )
        self.pipeline = pipeline
        self.config = config or LifecycleConfig()
        self.registry = pipeline.registry
        self.log = DecisionLog(
            decision_log
            if decision_log is not None
            else self.registry.root / DEFAULT_LOG_NAME
        )
        self.world = StoredWorld(pipeline.store)
        self.shard_size = shard_size
        self.workers = workers
        self.history = history if history is not None else pipeline.history
        self.gate = PromotionGate(self.config)
        self.scheduler: RetrainScheduler | None = None
        self.watchdog: PromotionWatchdog | None = None
        self.champion_version: str | None = None
        self.champion_since: int | None = None
        self._reports_since_adoption: list[WeeklyReport] = []

        #: Override hooks for operators and the smoke harness: a custom
        #: challenger factory (``callable(week) -> TicketPredictor``) and
        #: a one-shot gate override ("promote" / "hold", consumed on use).
        self.challenger_factory: Callable[[int], Any] | None = None
        self.force_next_decision: str | None = None

        metrics = get_registry()
        self._retrains = metrics.counter(
            "repro_lifecycle_retrains_total",
            "Challenger trainings triggered, by scheduler reason",
        )
        self._promotions = metrics.counter(
            "repro_lifecycle_promotions_total",
            "Challengers promoted to champion",
        )
        self._holds = metrics.counter(
            "repro_lifecycle_holds_total",
            "Challengers held back by the promotion gate",
        )
        self._rollbacks = metrics.counter(
            "repro_lifecycle_rollbacks_total",
            "Automatic post-promotion rollbacks",
        )
        self._delta_gauge = metrics.gauge(
            "repro_lifecycle_shadow_delta",
            "Last shadow precision-at-budget delta (challenger - champion)",
        )
        self._ci_low_gauge = metrics.gauge(
            "repro_lifecycle_shadow_ci_low",
            "Lower confidence bound of the last shadow delta",
        )
        self._strikes_gauge = metrics.gauge(
            "repro_lifecycle_watchdog_strikes",
            "Consecutive sub-floor live weeks on the promoted model",
        )
        self._version_gauge = metrics.gauge(
            "repro_lifecycle_active_version",
            "Numeric tag of the active model version",
        )

        pipeline.on_week_end = self._on_week_end

    def _record(self, action: str, week: int, **values) -> None:
        """Mirror a decision into the flight recorder (when attached)."""
        if self.history is None:
            return
        self.history.append(
            "lifecycle_decision",
            {k: float(v) for k, v in values.items() if v is not None},
            week=week,
            meta={"action": action},
        )

    # ----- driving --------------------------------------------------------

    def step(self) -> WeeklyReport | None:
        """Advance the underlying pipeline (and therefore the loop) a week."""
        return self.pipeline.step()

    def run(self, n_weeks: int | None = None) -> list[WeeklyReport]:
        """Run the pipeline; lifecycle actions fire via the weekly hook."""
        return self.pipeline.run(n_weeks)

    # ----- the weekly hook ------------------------------------------------

    def _on_week_end(self, week: int, report: WeeklyReport | None) -> None:
        if report is None:
            return  # warm-up: nothing deployed yet
        if self.champion_version is None:
            self._bootstrap(week)
        self._reports_since_adoption.append(report)

        if self.watchdog is not None:
            verdict = self.watchdog.observe(report.precision)
            self._strikes_gauge.set(self.watchdog.strikes)
            if verdict.rollback:
                self._rollback(week, verdict)
                return  # the restored champion gets a clean week first

        signals = live_drift_signals(
            self._reports_since_adoption,
            baseline_window=self.config.drift_baseline_window,
            recent_window=self.config.drift_recent_window,
        )
        assert self.scheduler is not None
        decision = self.scheduler.decide(week, signals)
        if decision.due:
            self._retrain_cycle(week, decision)

    def _bootstrap(self, week: int) -> None:
        """Register the warm-up-trained champion as the loop's baseline."""
        version = self.registry.active
        if version is None:
            raise RuntimeError(
                "pipeline went live without publishing a champion -- was "
                "the registry attached before warm-up ended?"
            )
        trained_at = self.pipeline._trained_at
        self.champion_version = version
        self.champion_since = week
        self.scheduler = RetrainScheduler(
            self.config, trained_at if trained_at is not None else week
        )
        self._version_gauge.set(_version_number(version))
        self.log.append(
            "bootstrap", week,
            version=version,
            trained_week=trained_at,
            config=self.config.to_dict(),
        )
        self._record("bootstrap", week, version=_version_number(version))
        LOG.info(kv("lifecycle.bootstrap", week=week, version=version))

    # ----- retrain -> shadow -> gate --------------------------------------

    def _retrain_cycle(self, week: int, decision: RetrainDecision) -> None:
        if self.challenger_factory is not None:
            # Custom factories keep their one-argument signature and own
            # their backend choice; record what the trained model reports.
            challenger = self.challenger_factory(week)
        else:
            challenger = self.pipeline.train_challenger(
                week,
                backend=self.config.challenger_backend,
                n_bins=self.config.challenger_bins,
            )
        backend = challenger.config.backend
        n_bins = challenger.config.n_bins
        challenger_bundle = ModelBundle(
            predictor=challenger,
            meta={
                "trained_week": week,
                "trigger": decision.reason,
                "lifecycle": True,
                "backend": backend,
                "n_bins": n_bins,
            },
        )
        version = self.registry.publish(challenger_bundle, activate=False)
        self._retrains.inc(reason=decision.reason)
        self.log.append(
            "retrain", week,
            reason=decision.reason,
            detail=decision.detail,
            challenger_version=version,
            champion_version=self.champion_version,
            backend=backend,
            n_bins=n_bins,
        )
        self._record("retrain", week, challenger=_version_number(version))
        LOG.info(kv(
            "lifecycle.retrain", week=week, reason=decision.reason,
            challenger=version, backend=backend,
        ))

        shadow = self._shadow_evaluate(week, challenger_bundle)
        if shadow is None:
            self._holds.inc()
            self.log.append(
                "hold", week,
                challenger_version=version,
                reason="no_eval_weeks",
                detail="no stored week has a complete label horizon yet",
            )
            self._record("hold", week, challenger=_version_number(version))
            return
        self._delta_gauge.set(shadow.precision_delta)
        self._ci_low_gauge.set(shadow.delta_ci_low)

        verdict = self.gate.decide(shadow)
        if self.force_next_decision is not None:
            forced = self.force_next_decision
            self.force_next_decision = None
            verdict_promote = forced == "promote"
            reason, detail = "forced", f"operator override: {forced}"
        else:
            verdict_promote = verdict.promote
            reason, detail = verdict.reason, verdict.detail

        if verdict_promote:
            self._promote(week, version, challenger, shadow, reason, detail)
        else:
            self._holds.inc()
            self.log.append(
                "hold", week,
                challenger_version=version,
                champion_version=self.champion_version,
                reason=reason,
                detail=detail,
                shadow=shadow.to_dict(),
            )
            self._record(
                "hold", week,
                challenger=_version_number(version),
                shadow_delta=shadow.precision_delta,
                ci_low=shadow.delta_ci_low,
            )
            LOG.info(kv(
                "lifecycle.hold", week=week, challenger=version, reason=reason,
            ))

    def _shadow_evaluate(
        self, week: int, challenger_bundle: ModelBundle
    ) -> ShadowReport | None:
        horizon = self.pipeline.config.predictor.horizon_weeks
        self.world.refresh()
        eligible = [w for w in self.world.store.weeks if w <= week - horizon]
        weeks = eligible[-self.config.shadow_weeks:]
        if not weeks:
            return None
        result = self.pipeline.simulator.result()
        labels = {
            w: shadow_labels(result, self.world.store.day_of(w), horizon * 7)
            for w in weeks
        }
        champion_bundle = self.registry.load(self.champion_version)
        evaluator = ShadowEvaluator(
            self.world,
            capacity=self.pipeline.config.predictor.capacity,
            config=self.config,
            shard_size=self.shard_size,
            workers=self.workers,
        )
        return evaluator.evaluate(
            champion_bundle, challenger_bundle, weeks, labels
        )

    def _promote(
        self,
        week: int,
        version: str,
        challenger,
        shadow: ShadowReport,
        reason: str,
        detail: str,
    ) -> None:
        self.registry.activate(version)
        self.pipeline.adopt(challenger, week)
        previous = self.champion_version
        self.champion_version = version
        self.champion_since = week
        self._reports_since_adoption = []
        self.watchdog = PromotionWatchdog(
            baseline_precision=shadow.champion_precision,
            drop=self.config.watchdog_drop,
            patience=self.config.watchdog_patience,
        )
        self._strikes_gauge.set(0)
        self._promotions.inc()
        self._version_gauge.set(_version_number(version))
        self.log.append(
            "promote", week,
            version=version,
            previous_version=previous,
            reason=reason,
            detail=detail,
            shadow=shadow.to_dict(),
            watchdog=self.watchdog.state(),
        )
        self._record(
            "promote", week,
            version=_version_number(version),
            shadow_delta=shadow.precision_delta,
            ci_low=shadow.delta_ci_low,
        )
        LOG.info(kv(
            "lifecycle.promote", week=week, version=version,
            delta=round(shadow.precision_delta, 4), reason=reason,
        ))

    # ----- rollback -------------------------------------------------------

    def _rollback(self, week: int, verdict) -> None:
        failed = self.champion_version
        restored = self.registry.rollback()
        bundle = self.registry.load(restored)
        self.pipeline.adopt(bundle.predictor, week)
        self.champion_version = restored
        self.champion_since = week
        self._reports_since_adoption = []
        self.watchdog = None
        self._strikes_gauge.set(0)
        self._rollbacks.inc()
        self._version_gauge.set(_version_number(restored))
        # Cite the registry's own audit record so the two trails can be
        # cross-checked entry for entry.
        registry_event = next(
            (e for e in reversed(self.registry.events)
             if e["action"] == "rollback"),
            None,
        )
        self.log.append(
            "rollback", week,
            rolled_back=failed,
            restored=restored,
            live_precision=verdict.precision,
            floor=verdict.floor,
            registry_event=registry_event,
        )
        self._record(
            "rollback", week,
            restored=_version_number(restored),
            live_precision=verdict.precision,
            floor=verdict.floor,
        )
        LOG.warning(kv(
            "lifecycle.rollback", week=week, rolled_back=failed,
            restored=restored, precision=round(verdict.precision, 4),
        ))

    # ----- introspection --------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Live status: champion, watchdog, scheduler, decision counts."""
        actions: dict[str, int] = {}
        for record in self.log.records():
            actions[record.action] = actions.get(record.action, 0) + 1
        return {
            "active_version": self.registry.active,
            "champion_version": self.champion_version,
            "champion_since_week": self.champion_since,
            "live_weeks_on_champion": len(self._reports_since_adoption),
            "watchdog": self.watchdog.state() if self.watchdog else None,
            "scheduler": {
                "cadence_weeks": self.config.cadence_weeks,
                "last_retrain_week": (
                    self.scheduler.last_retrain_week if self.scheduler else None
                ),
            },
            "decision_counts": actions,
            "chain_valid": not self.log.verify(),
        }


def shadow_labels(result, day: int, horizon_days: int) -> np.ndarray:
    """Per-line outcome labels for a shadow week starting at ``day``.

    A line is positive when it raised a customer-edge ticket within the
    horizon -- *or* when a real fault on it was cleared by a proactive
    dispatch inside that window.  The second clause de-censors the labels:
    once the loop is live, the champion's own weekend fixes remove exactly
    the tickets its best predictions would have caused, so raw
    ticket-based labels would score every deployed model (the champion
    most of all) toward zero on post-deployment weeks.  The dispatch
    outcome is ground truth the operator also has in the real system --
    the technician either found a problem or closed no-trouble-found.
    """
    delays = result.ticket_log.first_edge_ticket_after(
        result.n_lines, day, horizon_days
    )
    positives = delays >= 0
    end = day + horizon_days
    for event in result.fault_events:
        if event.clear_cause == "proactive" and day < event.cleared_day <= end:
            positives[event.line_id] = True
    return positives


def _version_number(version: str | None) -> int:
    """``v0012`` -> 12 (0 when unknown), for the active-version gauge."""
    if not version:
        return 0
    digits = "".join(c for c in version if c.isdigit())
    return int(digits) if digits else 0


def lifecycle_status(registry_root: str | Path) -> dict[str, Any]:
    """Reconstruct lifecycle status from the serving directories alone.

    Used by ``repro lifecycle status`` and the service's ``/lifecycle``
    route: no live controller needed, just the registry manifest and the
    decision log beside it.
    """
    from repro.serve.registry import ModelRegistry

    registry = ModelRegistry(registry_root)
    log = DecisionLog(Path(registry_root) / DEFAULT_LOG_NAME)
    problems = log.verify()
    actions: dict[str, int] = {}
    for record in log.records():
        actions[record.action] = actions.get(record.action, 0) + 1
    return {
        "active_version": registry.active,
        "versions": registry.versions,
        "registry_events": registry.events,
        "decisions": log.to_dicts(),
        "decision_counts": actions,
        "chain_valid": not problems,
        "chain_problems": problems,
    }
