"""Line-measurement schema and time-series storage.

The 25 basic line features follow Table 2 of the paper.  Prefixes ``dn``
and ``up`` mean downstream (downloading) and upstream (uploading).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "CATEGORICAL_FEATURES",
    "FEATURE_DESCRIPTIONS",
    "feature_index",
    "MeasurementStore",
]

#: The 25 Table-2 line features, in canonical column order.
FEATURE_NAMES: tuple[str, ...] = (
    "state",          # 1 if the modem answered the test
    "dnbr", "upbr",                   # bit rate (kbps)
    "dnpwr", "uppwr",                 # signal power (dBm)
    "dnnmr", "upnmr",                 # noise margin (dB)
    "dnaten", "upaten",               # signal attenuation (dB)
    "dnrelcap", "uprelcap",           # relative capacity (fraction)
    "dncvcnt1", "dncvcnt2", "dncvcnt3",   # code-violation interval counts
    "dnescnt1", "dnescnt2",           # errored-second counts
    "dnfeccnt1",                      # FEC counts >= 50
    "hicar",                          # biggest carrier number
    "bt",                             # bridge tap detected (0/1)
    "crosstalk",                      # crosstalk detected (0/1)
    "looplength",                     # estimated loop length (ft)
    "dnmaxattainfbr", "upmaxattainfbr",   # max attainable fast bit rate
    "dncells", "upcells",             # rolling traffic cell counts
)

N_FEATURES = len(FEATURE_NAMES)
if N_FEATURES != 25:
    raise AssertionError(f"Table 2 defines 25 features, schema has {N_FEATURES}")

#: Features treated as categorical by the stump learner.
CATEGORICAL_FEATURES: frozenset[str] = frozenset({"state", "bt", "crosstalk"})

FEATURE_DESCRIPTIONS: dict[str, str] = {
    "state": "whether the modem answered the weekly test",
    "dnbr": "downstream sync bit rate (kbps)",
    "upbr": "upstream sync bit rate (kbps)",
    "dnpwr": "downstream signal power (dBm)",
    "uppwr": "upstream signal power (dBm)",
    "dnnmr": "downstream noise margin (dB)",
    "upnmr": "upstream noise margin (dB)",
    "dnaten": "downstream signal attenuation (dB)",
    "upaten": "upstream signal attenuation (dB)",
    "dnrelcap": "downstream relative capacity (sync/attainable)",
    "uprelcap": "upstream relative capacity (sync/attainable)",
    "dncvcnt1": "code-violation interval count, low threshold",
    "dncvcnt2": "code-violation interval count, mid threshold",
    "dncvcnt3": "code-violation interval count, high threshold",
    "dnescnt1": "seconds with code violations, low threshold",
    "dnescnt2": "seconds with code violations, high threshold",
    "dnfeccnt1": "downstream FEC counts with value >= 50",
    "hicar": "biggest usable carrier number",
    "bt": "bridge tap detected",
    "crosstalk": "crosstalk detected",
    "looplength": "estimated loop length (ft)",
    "dnmaxattainfbr": "max attainable downstream fast bit rate (kbps)",
    "upmaxattainfbr": "max attainable upstream fast bit rate (kbps)",
    "dncells": "rolling downstream cell count",
    "upcells": "rolling upstream cell count",
}

_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def feature_index(name: str) -> int:
    """Column index of a Table-2 feature name."""
    try:
        return _INDEX[name]
    except KeyError:
        raise KeyError(f"unknown line feature {name!r}") from None


@dataclass
class MeasurementStore:
    """Per-line weekly measurement time-series.

    Data lives in a ``(n_lines, n_weeks, 25)`` float32 array.  A fully-NaN
    feature row (except ``state`` = 0) marks a missed record -- the modem
    was off during the Saturday test, the paper's main missingness channel.

    Attributes:
        n_lines: subscriber count.
        n_weeks: number of weekly campaigns the store can hold.
        saturday_day: absolute simulation-day index of each week's test.
    """

    n_lines: int
    n_weeks: int
    data: np.ndarray = field(init=False, repr=False)
    saturday_day: np.ndarray = field(init=False, repr=False)
    _filled: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_lines <= 0 or self.n_weeks <= 0:
            raise ValueError("n_lines and n_weeks must be positive")
        self.data = np.full(
            (self.n_lines, self.n_weeks, N_FEATURES), np.nan, dtype=np.float32
        )
        self.saturday_day = np.full(self.n_weeks, -1, dtype=int)
        self._filled = np.zeros(self.n_weeks, dtype=bool)

    def add_week(self, week: int, day: int, features: np.ndarray) -> None:
        """Record one campaign.

        Args:
            week: week index in [0, n_weeks).
            day: absolute simulation day of the test (a Saturday).
            features: (n_lines, 25) float array; NaN marks missing values.
        """
        if not 0 <= week < self.n_weeks:
            raise IndexError(f"week {week} out of range [0, {self.n_weeks})")
        features = np.asarray(features, dtype=np.float32)
        if features.shape != (self.n_lines, N_FEATURES):
            raise ValueError(
                f"features must be ({self.n_lines}, {N_FEATURES}), got {features.shape}"
            )
        if self._filled[week]:
            raise ValueError(f"week {week} was already recorded")
        self.data[:, week, :] = features
        self.saturday_day[week] = day
        self._filled[week] = True

    @property
    def filled_weeks(self) -> np.ndarray:
        """Indices of the weeks that have been recorded."""
        return np.flatnonzero(self._filled)

    def week_matrix(self, week: int) -> np.ndarray:
        """(n_lines, 25) snapshot of one week (a view, do not mutate)."""
        if not self._filled[week]:
            raise ValueError(f"week {week} has not been recorded")
        return self.data[:, week, :]

    def line_series(self, line: int) -> np.ndarray:
        """(n_weeks, 25) time-series of one line (a view, do not mutate)."""
        if not 0 <= line < self.n_lines:
            raise IndexError(f"line {line} out of range")
        return self.data[line]

    def feature_series(self, name: str) -> np.ndarray:
        """(n_lines, n_weeks) history of one named feature."""
        return self.data[:, :, feature_index(name)]

    def modem_off_fraction(self, upto_week: int | None = None) -> np.ndarray:
        """Per-line fraction of campaigns in which the modem was off.

        This is the Table-3 "Modem" customer feature.  ``upto_week`` bounds
        the history (exclusive); None uses all recorded weeks.
        """
        weeks = self.filled_weeks
        if upto_week is not None:
            weeks = weeks[weeks < upto_week]
        if weeks.size == 0:
            return np.zeros(self.n_lines)
        state = self.data[:, weeks, feature_index("state")]
        off = (state == 0) | np.isnan(state)
        return np.mean(off, axis=1)
