"""Weekly DSL line measurements (the paper's primary data source).

Every Saturday each DSLAM initiates a line test against every connected
modem and computes the 25 physical-layer features of Table 2.  This
package provides:

* :mod:`repro.measurement.records` -- the feature schema and a compact
  (lines x weeks x features) time-series store with NaN for the records
  missed when a modem was off;
* :mod:`repro.measurement.linetest` -- the test campaign itself, mapping
  simulated plant state through :class:`repro.netsim.physics.LinePhysics`
  plus measurement noise into feature rows.
"""

from repro.measurement.linetest import LineTestConfig, LineTester
from repro.measurement.records import (
    FEATURE_NAMES,
    N_FEATURES,
    CATEGORICAL_FEATURES,
    MeasurementStore,
    feature_index,
)

__all__ = [
    "FEATURE_NAMES",
    "N_FEATURES",
    "CATEGORICAL_FEATURES",
    "MeasurementStore",
    "feature_index",
    "LineTestConfig",
    "LineTester",
]
