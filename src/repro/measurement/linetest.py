"""The Saturday line-test campaign.

Section 3.3: *"Every Saturday, each DSLAM server initiates connections with
the DSL modem on each DSL line and exchanges a few packets with the modem.
Based on this conversation, several metrics or line features are computed
to reflect the current condition of that DSL line."*

:class:`LineTester` turns the simulated plant state (static loop
conditions + current fault effects + customer usage) into one (n_lines,
25) feature matrix per campaign:

* a modem that is off -- customer powered it down, the device is dead, or
  the DSLAM itself is in outage -- yields ``state = 0`` and NaN for every
  other feature (the paper's missing-record channel);
* all analog quantities carry measurement noise, making single-week reads
  unreliable and multi-week encodings (delta / time-series features)
  worthwhile, exactly the regime the paper operates in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.records import FEATURE_NAMES, N_FEATURES, feature_index
from repro.netsim.faults import FaultEffects
from repro.netsim.physics import LinePhysics, LoopConditions

__all__ = ["LineTestConfig", "LineTester"]


@dataclass(frozen=True)
class LineTestConfig:
    """Noise and nuisance parameters of the weekly test.

    Attributes:
        base_off_prob: chance an idle customer's modem is off on Saturday.
        usage_off_slope: extra off-probability for low-usage customers
            (heavy users leave the modem on; light users power it down).
        atten_noise_db: std-dev of attenuation measurement noise.
        margin_noise_db: std-dev of noise-margin measurement noise.
        rate_noise_frac: relative std-dev of rate measurements.
        loop_estimate_noise_frac: relative std-dev of the loop-length
            estimate.
        flag_false_negative: chance a real bridge tap / crosstalk goes
            undetected in one test.
        flag_false_positive: chance of a spurious flag on a clean line.
        cells_scale: converts (usage x rate) into a rolling cell count.
    """

    base_off_prob: float = 0.015
    usage_off_slope: float = 0.12
    atten_noise_db: float = 0.8
    margin_noise_db: float = 0.7
    rate_noise_frac: float = 0.01
    loop_estimate_noise_frac: float = 0.07
    flag_false_negative: float = 0.06
    flag_false_positive: float = 0.01
    cells_scale: float = 40.0


@dataclass
class LineTester:
    """Runs weekly line tests against the simulated plant."""

    physics: LinePhysics = field(default_factory=LinePhysics)
    config: LineTestConfig = field(default_factory=LineTestConfig)

    def run(
        self,
        conditions: LoopConditions,
        effects: FaultEffects,
        usage_intensity: np.ndarray,
        dslam_down: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Execute one campaign.

        Args:
            conditions: static plant state.
            effects: current severity-scaled fault effects.
            usage_intensity: per-line customer usage in [0, 1].
            dslam_down: per-line flag, True when the serving DSLAM is in
                outage during the test (no record possible).
            rng: random source.

        Returns:
            (n_lines, 25) float matrix in :data:`FEATURE_NAMES` order with
            NaN for the features of unreachable modems.
        """
        n = conditions.n_lines
        usage_intensity = np.asarray(usage_intensity, dtype=float)
        if usage_intensity.shape != (n,):
            raise ValueError("usage_intensity must have one entry per line")
        dslam_down = np.asarray(dslam_down, dtype=bool)
        if dslam_down.shape != (n,):
            raise ValueError("dslam_down must have one entry per line")

        cfg = self.config
        phys = self.physics

        off_prob = np.clip(
            cfg.base_off_prob
            + cfg.usage_off_slope * (1.0 - usage_intensity)
            + effects.off_prob,
            0.0,
            0.98,
        )
        modem_off = (rng.random(n) < off_prob) | dslam_down

        out = np.full((n, N_FEATURES), np.nan)
        out[:, feature_index("state")] = (~modem_off).astype(float)
        on = ~modem_off
        if not np.any(on):
            return out

        # --- analog loop quantities -----------------------------------
        atten_dn = (
            phys.attenuation_db(conditions.loop_kft)
            + effects.atten_db
            + rng.normal(0.0, cfg.atten_noise_db, n)
        )
        atten_up = (
            phys.attenuation_db(conditions.loop_kft, upstream=True)
            + effects.atten_db_up
            + rng.normal(0.0, cfg.atten_noise_db, n)
        )
        atten_dn = np.clip(atten_dn, 0.5, None)
        atten_up = np.clip(atten_up, 0.3, None)

        bt_true = conditions.static_bridge_tap | effects.bridge_tap
        xt_true = conditions.static_crosstalk | effects.crosstalk
        flips_bt = rng.random(n)
        flips_xt = rng.random(n)
        bt_seen = np.where(
            bt_true, flips_bt >= cfg.flag_false_negative, flips_bt < cfg.flag_false_positive
        )
        xt_seen = np.where(
            xt_true, flips_xt >= cfg.flag_false_negative, flips_xt < cfg.flag_false_positive
        )

        attain_dn = phys.attainable_kbps(
            conditions, effects.noise_db, effects.atten_db, effects.rate_factor,
            bt_true, xt_true,
        )
        attain_up = phys.attainable_kbps(
            conditions, effects.noise_db_up, effects.atten_db_up,
            effects.rate_factor, bt_true, xt_true, upstream=True,
        )
        sync_dn = phys.sync_rate_kbps(attain_dn, conditions.profile_down_kbps)
        sync_up = phys.sync_rate_kbps(attain_up, conditions.profile_up_kbps)

        noise_dn = 1.0 + rng.normal(0.0, cfg.rate_noise_frac, n)
        noise_up = 1.0 + rng.normal(0.0, cfg.rate_noise_frac, n)
        meas_attain_dn = np.clip(attain_dn * noise_dn, phys.min_rate_kbps, None)
        meas_attain_up = np.clip(attain_up * noise_up, phys.min_rate_kbps, None)
        meas_sync_dn = np.clip(sync_dn * (1.0 + rng.normal(0.0, cfg.rate_noise_frac, n)),
                               phys.min_rate_kbps, None)
        meas_sync_up = np.clip(sync_up * (1.0 + rng.normal(0.0, cfg.rate_noise_frac, n)),
                               phys.min_rate_kbps, None)

        nmr_dn = phys.noise_margin_db(attain_dn, sync_dn) + rng.normal(
            0.0, cfg.margin_noise_db, n
        )
        nmr_up = phys.noise_margin_db(attain_up, sync_up, upstream=True) + rng.normal(
            0.0, cfg.margin_noise_db, n
        )
        nmr_dn = np.clip(nmr_dn, 0.0, phys.max_noise_margin_db)
        nmr_up = np.clip(nmr_up, 0.0, phys.max_noise_margin_db)

        relcap_dn = phys.relative_capacity(meas_sync_dn, meas_attain_dn)
        relcap_up = phys.relative_capacity(meas_sync_up, meas_attain_up)

        # Power cutback: short, quiet loops transmit below nominal power.
        dnpwr = phys.tx_power_down_dbm - np.clip((30.0 - atten_dn) / 4.0, 0.0, 6.0)
        uppwr = phys.tx_power_up_dbm - np.clip((20.0 - atten_up) / 4.0, 0.0, 5.0)
        dnpwr = dnpwr + rng.normal(0.0, 0.3, n)
        uppwr = uppwr + rng.normal(0.0, 0.3, n)

        # --- error counters --------------------------------------------
        cv_lambda = phys.code_violation_rate(nmr_dn, effects.cv_rate)
        cv1 = rng.poisson(cv_lambda)
        cv2 = rng.binomial(cv1, 0.45)
        cv3 = rng.binomial(cv2, 0.45)
        es1 = rng.poisson(0.3 + 0.5 * cv_lambda)
        es2 = rng.binomial(es1, 0.5)
        fec = rng.poisson(1.0 + 0.8 * cv_lambda)

        hicar = phys.highest_carrier(conditions.loop_kft, effects.atten_db)
        hicar = np.clip(np.rint(hicar + rng.normal(0.0, 3.0, n)), 6, phys.max_carrier)

        loop_ft = (atten_dn / phys.atten_db_per_kft_down) * 1000.0
        loop_ft = np.clip(
            loop_ft * (1.0 + rng.normal(0.0, cfg.loop_estimate_noise_frac, n)),
            100.0,
            None,
        )

        uptime = np.clip(1.0 - effects.dropout, 0.02, 1.0)
        cells_noise = rng.lognormal(0.0, 0.35, n)
        dncells = (
            cfg.cells_scale * usage_intensity * meas_sync_dn * effects.cells_factor
            * uptime * cells_noise
        )
        upcells = 0.15 * dncells * rng.lognormal(0.0, 0.2, n)

        columns = {
            "dnbr": meas_sync_dn,
            "upbr": meas_sync_up,
            "dnpwr": dnpwr,
            "uppwr": uppwr,
            "dnnmr": nmr_dn,
            "upnmr": nmr_up,
            "dnaten": atten_dn,
            "upaten": atten_up,
            "dnrelcap": relcap_dn,
            "uprelcap": relcap_up,
            "dncvcnt1": cv1.astype(float),
            "dncvcnt2": cv2.astype(float),
            "dncvcnt3": cv3.astype(float),
            "dnescnt1": es1.astype(float),
            "dnescnt2": es2.astype(float),
            "dnfeccnt1": fec.astype(float),
            "hicar": hicar,
            "bt": bt_seen.astype(float),
            "crosstalk": xt_seen.astype(float),
            "looplength": loop_ft,
            "dnmaxattainfbr": meas_attain_dn,
            "upmaxattainfbr": meas_attain_up,
            "dncells": dncells,
            "upcells": upcells,
        }
        for name, values in columns.items():
            col = feature_index(name)
            out[on, col] = values[on]
        return out
