"""DMT (discrete multi-tone) physical-layer model for ADSL2+ loops.

The default :class:`repro.netsim.physics.LinePhysics` uses a calibrated
exponential reach/rate curve -- fast and adequate for the paper's
experiments, which only need qualitatively correct feature responses.
This module provides the detailed alternative: a per-tone bit-loading
model of an ADSL2+ link over twisted copper, from which attainable rates,
effective attenuation and the highest usable carrier emerge instead of
being postulated.

Model components (standard DSL engineering approximations):

* **tone grid** -- ADSL2+ downstream tones 33..511 and upstream tones
  7..31 at 4.3125 kHz spacing, 4k symbols/s;
* **copper loss** -- per-tone insertion loss grows with sqrt(f) (skin
  effect) plus a linear dielectric term, scaled by loop length;
* **bridge taps** -- an open stub reflects energy and notches frequencies
  around odd multiples of its quarter-wavelength; we model the classic
  ``sin^2`` notch profile;
* **noise** -- a flat receiver floor plus self-FEXT crosstalk rising with
  frequency (~f^2 coupling, standard 1 % worst-case FEXT shape) plus any
  fault-injected wideband noise;
* **bit loading** -- each tone carries ``log2(1 + SNR / Gamma)`` bits,
  with the SNR gap Gamma from a 9.8 dB uncoded gap + target margin -
  coding gain, clamped to the 15-bit constellation cap.

:class:`DmtLinePhysics` adapts the tone model to the
:class:`~repro.netsim.physics.LinePhysics` interface (via cached
loop-length tables) so the whole simulator can run on DMT physics by
swapping one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.physics import LinePhysics

__all__ = ["DmtConfig", "DmtModel", "DmtLinePhysics"]

_TONE_SPACING_HZ = 4312.5
_SYMBOL_RATE = 4000.0  # effective symbols/s after framing overhead


@dataclass(frozen=True)
class DmtConfig:
    """Parameters of the per-tone link model.

    Attributes:
        down_tone_lo, down_tone_hi: downstream tone index range (ADSL2+).
        up_tone_lo, up_tone_hi: upstream tone index range.
        loss_sqrt_db_per_kft: skin-effect loss coefficient -- dB per kft at
            1 MHz, scaling with sqrt(f).
        loss_linear_db_per_kft: dielectric loss coefficient -- dB per kft
            per MHz.
        tx_psd_down_dbm_hz: downstream transmit PSD.
        tx_psd_up_dbm_hz: upstream transmit PSD.
        noise_floor_dbm_hz: receiver noise floor (-140 dBm/Hz is the
            standard assumption).
        fext_coupling_db: FEXT coupling at 1 MHz over 1 kft for the
            in-binder disturber mix; active when crosstalk is present.
        snr_gap_db: uncoded SNR gap (9.8 dB at 1e-7 BER).
        target_margin_db: provisioning margin baked into loading.
        coding_gain_db: trellis/RS coding gain.
        max_bits_per_tone: constellation cap (15 for ADSL2+).
        bridge_tap_kft: default stub length of a legacy bridge tap.
        bridge_tap_depth_db: maximum notch depth of that tap.
    """

    down_tone_lo: int = 33
    down_tone_hi: int = 511
    up_tone_lo: int = 7
    up_tone_hi: int = 31
    loss_sqrt_db_per_kft: float = 4.6
    loss_linear_db_per_kft: float = 1.3
    tx_psd_down_dbm_hz: float = -40.0
    tx_psd_up_dbm_hz: float = -38.0
    # Effective in-service floor: thermal + ambient RFI + residual binder
    # crosstalk.  (-140 dBm/Hz is the thermal-only textbook value; field
    # modems see far more.)
    noise_floor_dbm_hz: float = -110.0
    fext_coupling_db: float = -45.0
    snr_gap_db: float = 9.8
    target_margin_db: float = 6.0
    coding_gain_db: float = 3.0
    max_bits_per_tone: int = 15
    overhead_factor: float = 0.85  # framing/pilot/RS overhead on net rate
    bridge_tap_kft: float = 0.5
    bridge_tap_depth_db: float = 10.0


class DmtModel:
    """Per-tone SNR and bit-loading computations."""

    def __init__(self, config: DmtConfig | None = None):
        self.config = config or DmtConfig()
        cfg = self.config
        if not (0 < cfg.up_tone_lo < cfg.up_tone_hi < cfg.down_tone_lo
                < cfg.down_tone_hi):
            raise ValueError("tone ranges must be ordered and disjoint")
        self._down_tones = np.arange(cfg.down_tone_lo, cfg.down_tone_hi + 1)
        self._up_tones = np.arange(cfg.up_tone_lo, cfg.up_tone_hi + 1)

    def tones(self, upstream: bool = False) -> np.ndarray:
        """Tone indices of the requested direction."""
        return self._up_tones if upstream else self._down_tones

    def tone_frequencies_hz(self, upstream: bool = False) -> np.ndarray:
        """Center frequencies of the direction's tones."""
        return self.tones(upstream) * _TONE_SPACING_HZ

    def loop_loss_db(
        self, loop_kft: float, frequencies_hz: np.ndarray
    ) -> np.ndarray:
        """Copper insertion loss per tone for a loop of ``loop_kft``."""
        if loop_kft < 0:
            raise ValueError("loop length cannot be negative")
        cfg = self.config
        f_mhz = np.asarray(frequencies_hz, dtype=float) / 1e6
        per_kft = (
            cfg.loss_sqrt_db_per_kft * np.sqrt(f_mhz)
            + cfg.loss_linear_db_per_kft * f_mhz
        )
        return per_kft * loop_kft

    def bridge_tap_loss_db(
        self, frequencies_hz: np.ndarray, tap_kft: float | None = None
    ) -> np.ndarray:
        """The sin^2 notch profile of an open stub of length ``tap_kft``.

        An open stub of physical length L notches most deeply where it is
        an odd quarter-wavelength, i.e. around ``f = v / 4L`` and odd
        multiples; propagation speed in copper pairs is ~0.6c.
        """
        cfg = self.config
        tap_kft = cfg.bridge_tap_kft if tap_kft is None else tap_kft
        if tap_kft <= 0:
            return np.zeros_like(np.asarray(frequencies_hz, dtype=float))
        v_kft_per_s = 0.6 * 983_571.0  # 0.6 c in kft/s
        f_notch = v_kft_per_s / (4.0 * tap_kft)
        f = np.asarray(frequencies_hz, dtype=float)
        return cfg.bridge_tap_depth_db * np.sin(np.pi / 2.0 * f / f_notch) ** 2

    def noise_psd_dbm_hz(
        self,
        frequencies_hz: np.ndarray,
        loop_kft: float,
        crosstalk: bool,
        extra_noise_db: float = 0.0,
    ) -> np.ndarray:
        """Receiver noise PSD per tone: floor + optional FEXT + fault noise."""
        cfg = self.config
        f = np.asarray(frequencies_hz, dtype=float)
        floor_mw = 10 ** (cfg.noise_floor_dbm_hz / 10.0)
        total_mw = np.full_like(f, floor_mw)
        if crosstalk:
            # FEXT power ~ |H(f)|^2 * k * f^2 * L; expressed in dB relative
            # to the direct path so it scales correctly with loop loss.
            direct_loss_db = self.loop_loss_db(loop_kft, f)
            fext_db = (
                cfg.tx_psd_down_dbm_hz
                - direct_loss_db
                + cfg.fext_coupling_db
                + 20.0 * np.log10(np.maximum(f, 1.0) / 1e6)
                + 10.0 * np.log10(max(loop_kft, 0.01))
            )
            total_mw = total_mw + 10 ** (fext_db / 10.0)
        if extra_noise_db:
            total_mw = total_mw * 10 ** (extra_noise_db / 10.0)
        return 10.0 * np.log10(total_mw)

    def tone_snr_db(
        self,
        loop_kft: float,
        upstream: bool = False,
        extra_noise_db: float = 0.0,
        extra_atten_db: float = 0.0,
        bridge_tap: bool = False,
        crosstalk: bool = False,
    ) -> np.ndarray:
        """Per-tone SNR for the given loop and impairments."""
        cfg = self.config
        f = self.tone_frequencies_hz(upstream)
        tx_psd = cfg.tx_psd_up_dbm_hz if upstream else cfg.tx_psd_down_dbm_hz
        loss = self.loop_loss_db(loop_kft, f) + extra_atten_db
        if bridge_tap:
            loss = loss + self.bridge_tap_loss_db(f)
        noise = self.noise_psd_dbm_hz(f, loop_kft, crosstalk, extra_noise_db)
        return tx_psd - loss - noise

    def bits_per_tone(self, snr_db: np.ndarray) -> np.ndarray:
        """Bit loading per tone given its SNR."""
        cfg = self.config
        gap_db = cfg.snr_gap_db + cfg.target_margin_db - cfg.coding_gain_db
        snr_linear = 10 ** ((np.asarray(snr_db, dtype=float) - gap_db) / 10.0)
        bits = np.floor(np.log2(1.0 + snr_linear))
        return np.clip(bits, 0, cfg.max_bits_per_tone)

    def attainable_kbps(
        self,
        loop_kft: float,
        upstream: bool = False,
        extra_noise_db: float = 0.0,
        extra_atten_db: float = 0.0,
        bridge_tap: bool = False,
        crosstalk: bool = False,
    ) -> float:
        """Attainable line rate from the loaded tone set."""
        snr = self.tone_snr_db(
            loop_kft, upstream, extra_noise_db, extra_atten_db,
            bridge_tap, crosstalk,
        )
        bits = self.bits_per_tone(snr)
        return float(
            np.sum(bits) * _SYMBOL_RATE * self.config.overhead_factor / 1000.0
        )

    def highest_carrier(self, loop_kft: float,
                        extra_atten_db: float = 0.0) -> int:
        """Highest downstream tone still carrying at least one bit."""
        snr = self.tone_snr_db(loop_kft, extra_atten_db=extra_atten_db)
        bits = self.bits_per_tone(snr)
        loaded = np.flatnonzero(bits > 0)
        if loaded.size == 0:
            return int(self.config.down_tone_lo)
        return int(self._down_tones[loaded[-1]])


class DmtLinePhysics(LinePhysics):
    """Drop-in :class:`LinePhysics` whose curves come from the DMT model.

    Rates, attenuation slopes and the carrier profile are tabulated over a
    loop-length grid at construction time, so the vectorised simulator
    keeps its speed while running on physically-derived curves.
    """

    def __init__(self, dmt: DmtModel | None = None,
                 max_loop_kft: float = 24.0, grid_points: int = 121,
                 **kwargs):
        # dataclass __init__ of LinePhysics handles the scalar knobs.
        super().__init__(**kwargs)
        object.__setattr__(self, "dmt", dmt or DmtModel())
        grid = np.linspace(0.0, max_loop_kft, grid_points)
        down = np.array([self.dmt.attainable_kbps(L) for L in grid])
        up = np.array([self.dmt.attainable_kbps(L, upstream=True) for L in grid])
        hicar_tab = np.array([self.dmt.highest_carrier(L) for L in grid])
        object.__setattr__(self, "_grid", grid)
        object.__setattr__(self, "_down_table", down)
        object.__setattr__(self, "_up_table", up)
        object.__setattr__(self, "_hicar_table", hicar_tab.astype(float))

    def clean_attainable_kbps(
        self, loop_kft: np.ndarray, upstream: bool = False
    ) -> np.ndarray:
        loop_kft = np.clip(np.asarray(loop_kft, dtype=float), 0.0,
                           self._grid[-1])
        table = self._up_table if upstream else self._down_table
        rate = np.interp(loop_kft, self._grid, table)
        return np.clip(rate, self.min_rate_kbps, None)

    def highest_carrier(
        self, loop_kft: np.ndarray, extra_atten_db: np.ndarray
    ) -> np.ndarray:
        loop_kft = np.clip(np.asarray(loop_kft, dtype=float), 0.0,
                           self._grid[-1])
        base = np.interp(loop_kft, self._grid, self._hicar_table)
        # Extra attenuation pushes the highest usable tone down roughly
        # like extra loop length would.
        effective = loop_kft + np.asarray(extra_atten_db, float) / max(
            self.atten_db_per_kft_down, 1e-9
        )
        effective = np.clip(effective, 0.0, self._grid[-1])
        shifted = np.interp(effective, self._grid, self._hicar_table)
        return np.clip(np.minimum(base, shifted), 6.0, self.max_carrier)
