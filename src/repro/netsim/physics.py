"""Simplified twisted-pair loop physics.

The ticket predictor never sees the plant directly -- only the 25 Table-2
features computed by the weekly line test.  This module maps the simulated
plant state (loop length, service profile, environmental noise, active
fault effects) onto those features with the qualitative dependencies the
paper's expert rules encode:

* longer loops attenuate more and attain less (the 15 kft rule: a basic
  768 kbps profile becomes marginal around 15 kft);
* relative capacity (sync rate / attainable rate) above ~92 % marks an
  unhealthy line;
* noise-type faults (water, corrosion, missing filters) eat noise margin
  and inflate code-violation and errored-second counters;
* capacity-type defects (bridge taps, load coils, stubs) cap the
  attainable rate and set the ``bt`` flag;
* dying electronics drop sync and traffic cell counts.

The attainable-rate curve is an exponential fit to published ADSL2+
reach/rate tables; we care about its *shape* (monotone, convex decay with
distance), not its absolute calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoopConditions", "LinePhysics"]


@dataclass(frozen=True)
class LoopConditions:
    """Static per-line plant state, as parallel numpy arrays.

    Attributes:
        loop_kft: true working loop length in kilofeet.
        profile_down_kbps: provisioned downstream rate per line.
        profile_up_kbps: provisioned upstream rate per line.
        ambient_noise_db: per-line environmental noise penalty (dB) --
            lines in electrically noisy areas are born worse.
        static_bridge_tap: lines built with a legacy bridge tap.
        static_crosstalk: lines in high-binder-fill areas with measurable
            crosstalk even when healthy.
    """

    loop_kft: np.ndarray
    profile_down_kbps: np.ndarray
    profile_up_kbps: np.ndarray
    ambient_noise_db: np.ndarray
    static_bridge_tap: np.ndarray
    static_crosstalk: np.ndarray

    @property
    def n_lines(self) -> int:
        return len(self.loop_kft)


@dataclass(frozen=True)
class LinePhysics:
    """Deterministic part of the loop model (noise is added by the caller).

    Attributes:
        max_down_kbps: downstream attainable rate at zero loop length.
        max_up_kbps: upstream attainable rate at zero loop length.
        down_reach_kft: e-folding distance of downstream attainable rate.
        up_reach_kft: e-folding distance of upstream attainable rate.
        down_kbps_per_db: attainable downstream kbps lost per dB of extra
            noise or attenuation (the Shannon slope at typical SNR).
        up_kbps_per_db: same for upstream.
        atten_db_per_kft_down: downstream attenuation slope.
        atten_db_per_kft_up: upstream attenuation slope.
        sync_headroom: fraction of attainable the modem will sync at when
            the profile asks for more than the loop can carry.
        tx_power_down_dbm: nominal downstream transmit power.
        tx_power_up_dbm: nominal upstream transmit power.
        bt_rate_penalty: multiplicative attainable-rate penalty of a
            static bridge tap.
        crosstalk_noise_db: noise penalty of static crosstalk.
    """

    max_down_kbps: float = 9000.0
    max_up_kbps: float = 1250.0
    down_reach_kft: float = 7.5
    up_reach_kft: float = 12.0
    down_kbps_per_db: float = 200.0
    up_kbps_per_db: float = 30.0
    atten_db_per_kft_down: float = 3.6
    atten_db_per_kft_up: float = 2.2
    sync_headroom: float = 0.95
    tx_power_down_dbm: float = 19.5
    tx_power_up_dbm: float = 12.5
    bt_rate_penalty: float = 0.8
    crosstalk_noise_db: float = 3.0
    min_rate_kbps: float = 32.0
    max_noise_margin_db: float = 31.0
    max_carrier: int = 255

    def attenuation_db(self, loop_kft: np.ndarray, upstream: bool = False) -> np.ndarray:
        """Signal attenuation of a clean loop of the given length."""
        loop_kft = np.asarray(loop_kft, dtype=float)
        slope = self.atten_db_per_kft_up if upstream else self.atten_db_per_kft_down
        return slope * np.clip(loop_kft, 0.0, None)

    def clean_attainable_kbps(
        self, loop_kft: np.ndarray, upstream: bool = False
    ) -> np.ndarray:
        """Attainable (max fast) rate of a clean loop."""
        loop_kft = np.clip(np.asarray(loop_kft, dtype=float), 0.0, None)
        if upstream:
            rate = self.max_up_kbps * np.exp(-loop_kft / self.up_reach_kft)
        else:
            rate = self.max_down_kbps * np.exp(-loop_kft / self.down_reach_kft)
        return np.clip(rate, self.min_rate_kbps, None)

    def attainable_kbps(
        self,
        conditions: LoopConditions,
        extra_noise_db: np.ndarray,
        extra_atten_db: np.ndarray,
        rate_factor: np.ndarray,
        bridge_tap: np.ndarray,
        crosstalk: np.ndarray,
        upstream: bool = False,
    ) -> np.ndarray:
        """Attainable rate including fault and environment penalties.

        Args:
            conditions: static plant state.
            extra_noise_db: fault-induced noise per line (already scaled by
                severity).
            extra_atten_db: fault-induced attenuation per line.
            rate_factor: fault multiplicative capacity penalty (<= 1).
            bridge_tap: effective bridge-tap flag per line (static or
                fault-induced).
            crosstalk: effective crosstalk flag per line.
            upstream: compute the upstream rate instead of downstream.
        """
        clean = self.clean_attainable_kbps(conditions.loop_kft, upstream)
        slope = self.up_kbps_per_db if upstream else self.down_kbps_per_db
        db_penalty = (
            np.asarray(extra_noise_db, dtype=float)
            + np.asarray(extra_atten_db, dtype=float)
            + conditions.ambient_noise_db
            + self.crosstalk_noise_db * np.asarray(crosstalk, dtype=float)
        )
        rate = clean - slope * db_penalty
        rate = rate * np.asarray(rate_factor, dtype=float)
        rate = rate * np.where(np.asarray(bridge_tap, dtype=bool), self.bt_rate_penalty, 1.0)
        return np.clip(rate, self.min_rate_kbps, None)

    def sync_rate_kbps(
        self, attainable_kbps: np.ndarray, profile_kbps: np.ndarray
    ) -> np.ndarray:
        """Actual sync rate: the profile rate, capped by loop headroom."""
        attainable_kbps = np.asarray(attainable_kbps, dtype=float)
        profile_kbps = np.asarray(profile_kbps, dtype=float)
        return np.minimum(profile_kbps, self.sync_headroom * attainable_kbps)

    def noise_margin_db(
        self,
        attainable_kbps: np.ndarray,
        sync_kbps: np.ndarray,
        upstream: bool = False,
    ) -> np.ndarray:
        """Noise margin from the headroom between attainable and sync rate.

        Linearised Shannon: each dB of margin is worth ``kbps_per_db`` of
        rate, so margin ~= (attainable - sync) / kbps_per_db, clipped to
        the modem's reporting range.
        """
        slope = self.up_kbps_per_db if upstream else self.down_kbps_per_db
        margin = (np.asarray(attainable_kbps, float) - np.asarray(sync_kbps, float)) / slope
        return np.clip(margin, 0.0, self.max_noise_margin_db)

    def relative_capacity(
        self, sync_kbps: np.ndarray, attainable_kbps: np.ndarray
    ) -> np.ndarray:
        """Fraction of attainable capacity in use (the 92 % rule metric)."""
        attainable_kbps = np.clip(np.asarray(attainable_kbps, float), 1e-9, None)
        return np.clip(np.asarray(sync_kbps, float) / attainable_kbps, 0.0, 1.0)

    def highest_carrier(
        self, loop_kft: np.ndarray, extra_atten_db: np.ndarray
    ) -> np.ndarray:
        """Highest usable downstream carrier index.

        High-frequency tones die first with distance, so the biggest
        carrier number decays with loop length and fault attenuation.
        """
        loop_kft = np.clip(np.asarray(loop_kft, float), 0.0, None)
        effective = loop_kft + np.asarray(extra_atten_db, float) / self.atten_db_per_kft_down
        return np.clip(
            self.max_carrier * np.exp(-effective / 9.0), 6.0, self.max_carrier
        )

    def code_violation_rate(
        self,
        noise_margin_db: np.ndarray,
        fault_cv_rate: np.ndarray,
        margin_knee_db: float = 6.0,
    ) -> np.ndarray:
        """Expected code-violation events during a test window.

        Healthy, high-margin lines see a trickle; the rate grows
        quadratically once the margin drops below the knee, plus whatever
        the active fault injects directly.
        """
        margin = np.asarray(noise_margin_db, dtype=float)
        deficit = np.clip(margin_knee_db - margin, 0.0, None)
        return 0.4 + 0.9 * deficit**2 + np.asarray(fault_cv_rate, dtype=float)
