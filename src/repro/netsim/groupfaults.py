"""Correlated (shared-infrastructure) fault events for the simulated plant.

The per-line :class:`~repro.netsim.faults.FaultModel` draws independent
faults; real plants also fail *in groups*: a dying DSLAM line card
degrades every port it terminates, and a water-logged F1/F2 binder splice
degrades every copper pair bundled through it.  This module pre-schedules
such group events (like :class:`~repro.tickets.outage.OutageSchedule`,
so downstream consumers can see the whole story deterministically) and
turns them into per-line degradation strengths:

* each event names a **level** (``"dslam"`` or ``"binder"``), a group id,
  and a day window;
* member lines feel the degradation with **lagged onsets** -- moisture
  creeps along the sheath, a card fails port bank by port bank -- so the
  cross-line signature builds up over days instead of switching on at
  once;
* severity **ramps** from onset to full strength over ``ramp_days``;
* a proactive *group dispatch* (one truck roll to the splice case or the
  central office) can clear the event early, which is the repair action
  the :mod:`repro.fleet` triage layer issues.

DSLAM-level events optionally **escalate into real outages**: the failing
card finally dies right after its degradation window.  The simulator
derives its tickets-side :class:`~repro.tickets.outage.OutageSchedule`
from the same events via :meth:`OutageSchedule.from_group_faults`, so the
netsim and tickets views of a correlated outage are one consistent sample
instead of two independent ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.topology import Topology

__all__ = [
    "LEVEL_DSLAM",
    "LEVEL_BINDER",
    "GroupFaultConfig",
    "GroupFaultEvent",
    "GroupFaultSchedule",
    "GroupFaultModel",
]

LEVEL_DSLAM = "dslam"
LEVEL_BINDER = "binder"


@dataclass(frozen=True)
class GroupFaultConfig:
    """Correlated-fault process parameters.

    Attributes:
        n_dslam_events: DSLAM-level shared degradations to schedule.
        n_binder_events: binder-level shared degradations to schedule
            (placed on binders *outside* the chosen DSLAMs, so the two
            levels stay distinguishable in the ground truth).
        min_duration_weeks, max_duration_weeks: degradation window length.
        event_window: fraction of the horizon in which events may start;
            the default back-half placement leaves the early weeks clean
            for model training.
        onset_lag_max_days: per-line onset lag is uniform in
            ``[0, onset_lag_max_days]`` days after the event start.
        ramp_days: days from a line's onset to full severity.
        noise_db: per-line added noise at full strength (both directions:
            shared plant sits in the common path).
        cv_rate: added code-violation rate at full strength.
        dropout: added retrain/dropout probability at full strength.
        cells_drop: relative throughput loss at full strength.
        escalate_to_outage: whether DSLAM-level events end in a real
            outage (the card finally dies), from which the simulator
            derives the tickets-side outage schedule.
        outage_days: duration of the escalated outage.
        seed: generator seed for event placement and lags.
    """

    n_dslam_events: int = 1
    n_binder_events: int = 3
    min_duration_weeks: int = 3
    max_duration_weeks: int = 5
    event_window: tuple[float, float] = (0.5, 0.85)
    onset_lag_max_days: int = 10
    ramp_days: int = 14
    noise_db: float = 6.0
    cv_rate: float = 12.0
    dropout: float = 0.10
    cells_drop: float = 0.15
    escalate_to_outage: bool = True
    outage_days: int = 2
    seed: int = 31


@dataclass
class GroupFaultEvent:
    """One shared-infrastructure degradation.

    Attributes:
        event_id: index of this event in the schedule.
        level: ``"dslam"`` or ``"binder"``.
        group_id: DSLAM or binder index, per ``level``.
        line_ids: member lines of the group.
        onset_lags: per-member days after ``start_day`` until the line
            starts feeling the degradation (aligned with ``line_ids``).
        start_day: first day of the event (absolute).
        end_day: last scheduled day (inclusive) absent a repair.
        cleared_day: day a group dispatch repaired the shared plant, -1
            while unrepaired.
        clear_cause: "" until cleared, then e.g. ``"group-dispatch"``.
    """

    event_id: int
    level: str
    group_id: int
    line_ids: np.ndarray
    onset_lags: np.ndarray
    start_day: int
    end_day: int
    cleared_day: int = -1
    clear_cause: str = ""

    def active_on(self, day: int) -> bool:
        if day < self.start_day or day > self.end_day:
            return False
        return self.cleared_day < 0 or day < self.cleared_day


@dataclass
class GroupFaultSchedule:
    """All correlated fault events of a run, pre-scheduled at start."""

    config: GroupFaultConfig
    n_weeks: int
    events: list[GroupFaultEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        topology: Topology,
        n_weeks: int,
        config: GroupFaultConfig | None = None,
    ) -> "GroupFaultSchedule":
        """Pre-schedule the configured DSLAM and binder events.

        Deterministic under a fixed config seed: the same topology and
        horizon always produce the same events, groups, and lags.
        """
        config = config or GroupFaultConfig()
        if n_weeks <= 0:
            raise ValueError("n_weeks must be positive")
        if config.min_duration_weeks < 1 or \
                config.max_duration_weeks < config.min_duration_weeks:
            raise ValueError("invalid group-fault duration range")
        lo_frac, hi_frac = config.event_window
        if not 0.0 <= lo_frac < hi_frac <= 1.0:
            raise ValueError("event_window must be an increasing (lo, hi) "
                             "pair of fractions in [0, 1]")
        if config.n_binder_events > 0 and not topology.has_binders:
            raise ValueError(
                "binder-level events need a topology with binder groups"
            )
        rng = np.random.default_rng(config.seed)
        lo_week = int(n_weeks * lo_frac)
        hi_week = max(lo_week + 1, int(n_weeks * hi_frac))

        n_dslam = min(config.n_dslam_events, topology.n_dslams)
        dslam_ids = rng.choice(topology.n_dslams, size=n_dslam, replace=False)
        chosen_dslams = set(int(d) for d in dslam_ids)

        binder_pool = np.array(
            [
                b.binder_id
                for b in topology.binders
                if b.dslam_id not in chosen_dslams
            ],
            dtype=int,
        )
        n_binder = min(config.n_binder_events, binder_pool.size)
        binder_ids = (
            rng.choice(binder_pool, size=n_binder, replace=False)
            if n_binder
            else np.empty(0, dtype=int)
        )

        events: list[GroupFaultEvent] = []

        def schedule(level: str, group_id: int, line_ids: np.ndarray) -> None:
            start_week = int(rng.integers(lo_week, hi_week))
            start_day = start_week * 7 + int(rng.integers(0, 7))
            duration_weeks = int(rng.integers(
                config.min_duration_weeks, config.max_duration_weeks + 1
            ))
            lags = rng.integers(
                0, config.onset_lag_max_days + 1, size=line_ids.size
            )
            events.append(
                GroupFaultEvent(
                    event_id=len(events),
                    level=level,
                    group_id=int(group_id),
                    line_ids=np.asarray(line_ids, dtype=int),
                    onset_lags=lags,
                    start_day=start_day,
                    end_day=start_day + duration_weeks * 7 - 1,
                )
            )

        for dslam_id in dslam_ids:
            schedule(LEVEL_DSLAM, int(dslam_id),
                     topology.lines_of_dslam(int(dslam_id)))
        for binder_id in binder_ids:
            schedule(LEVEL_BINDER, int(binder_id),
                     topology.lines_of_binder(int(binder_id)))
        return cls(config=config, n_weeks=n_weeks, events=events)

    def active_on(self, day: int) -> list[GroupFaultEvent]:
        """Events whose degradation window covers ``day`` and is unrepaired."""
        return [e for e in self.events if e.active_on(day)]

    def dslam_events(self) -> list[GroupFaultEvent]:
        """The DSLAM-level events (the ones that can escalate to outages)."""
        return [e for e in self.events if e.level == LEVEL_DSLAM]

    def event_counts(self) -> dict[str, int]:
        """Scheduled events per level."""
        counts = {LEVEL_DSLAM: 0, LEVEL_BINDER: 0}
        for event in self.events:
            counts[event.level] = counts.get(event.level, 0) + 1
        return counts


@dataclass
class GroupFaultModel:
    """Turns the schedule into per-line strengths and handles repairs."""

    schedule: GroupFaultSchedule
    n_lines: int

    @property
    def config(self) -> GroupFaultConfig:
        return self.schedule.config

    def line_strength(self, day: int) -> np.ndarray:
        """Per-line shared-degradation strength in [0, 1] on ``day``.

        A line's strength ramps linearly from its lagged onset to full
        over ``ramp_days``; overlapping events combine by maximum.
        """
        strength = np.zeros(self.n_lines)
        ramp_days = max(1, self.config.ramp_days)
        for event in self.schedule.active_on(day):
            onset = event.start_day + event.onset_lags
            felt = onset <= day
            if not np.any(felt):
                continue
            ramp = np.clip((day - onset[felt] + 1) / ramp_days, 0.0, 1.0)
            lines = event.line_ids[felt]
            strength[lines] = np.maximum(strength[lines], ramp)
        return strength

    def line_strength_range(self, day: int, start: int, stop: int) -> np.ndarray:
        """``line_strength(day)[start:stop]`` without the O(n_lines) array.

        The streaming engine simulates fixed line blocks; this restricts
        every event to the members falling inside ``[start, stop)`` (the
        member ids of a DSLAM or binder group are stored sorted, so a
        ``searchsorted`` window finds them), which keeps the per-block cost
        proportional to the block, not the plant.  Events whose membership
        straddles a block boundary contribute to every block they touch.
        """
        strength = np.zeros(stop - start)
        ramp_days = max(1, self.config.ramp_days)
        for event in self.schedule.active_on(day):
            lo, hi = np.searchsorted(event.line_ids, (start, stop))
            if lo == hi:
                continue
            onset = event.start_day + event.onset_lags[lo:hi]
            felt = onset <= day
            if not np.any(felt):
                continue
            ramp = np.clip((day - onset[felt] + 1) / ramp_days, 0.0, 1.0)
            rows = event.line_ids[lo:hi][felt] - start
            strength[rows] = np.maximum(strength[rows], ramp)
        return strength

    def affected_lines(self, day: int) -> np.ndarray:
        """Boolean mask of lines feeling any shared degradation on ``day``."""
        return self.line_strength(day) > 0.0

    def find_active(self, level: str, group_id: int, day: int):
        """The active event for a (level, group) on ``day``, or None."""
        for event in self.schedule.events:
            if (event.level == level and event.group_id == group_id
                    and event.active_on(day)):
                return event
        return None

    def clear_event(
        self, event: GroupFaultEvent, day: int, cause: str = "group-dispatch"
    ) -> None:
        """Mark a shared fault repaired from ``day`` on."""
        event.cleared_day = int(day)
        event.clear_cause = cause
