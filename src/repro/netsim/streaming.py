"""Out-of-core week generation: the plant simulated in line blocks.

:class:`DslSimulator` materialises the full population -- a dense
``(n_lines, n_weeks, 25)`` measurement cube plus per-line ticket and
traffic state -- before the first week is even simulated, which caps a
run at a few hundred thousand lines on one box.  The paper's Saturday
campaign covers *millions* of lines, so this module provides the
streaming path: :class:`StreamingSimulator` partitions the plant into
fixed blocks of :data:`STREAM_BLOCK_LINES` lines, simulates each block
independently over the whole horizon, and yields per-(chunk, week)
:class:`WeekBlock` payloads that the line-week store appends
incrementally.  Peak memory is one chunk's week matrices plus the O(n)
per-line population arrays -- never the full cube.

**Chunk-size invariance.**  Randomness is keyed per *block*, not per
chunk: block ``b`` draws from ``SeedSequence(entropy=seed,
spawn_key=(salt, b))``, and a requested ``chunk_lines`` is rounded up to
a whole number of blocks, so every chunking of the same config produces
bit-identical features and ticket vectors.  The "monolithic" streaming
run is simply the single-chunk case (``chunk_lines=None``) -- there is
no separate code path to diverge from.

**What a block simulates.**  Each block replays the exact
:meth:`DslSimulator.step` weekly order on its own lines: fault
evolution and onsets, shared-infrastructure precursors, customer edge /
precursor / billing tickets through a real :class:`Dispatcher` (failed
fixes, retries, IVR deflection during outages), and the Saturday
line-test campaign with :func:`~repro.netsim.simulator.combine_shared_effects`
coupling.  Cross-line structures that must be globally consistent --
topology, the outage schedule, and pre-scheduled correlated group-fault
events -- are built once from their own config seeds and *restricted* to
each block (:meth:`GroupFaultModel.line_strength_range`), so a binder
event straddling a block boundary degrades its members in every block it
touches.

Because blocks are independent, a streaming run is **not** bit-identical
to ``DslSimulator.run`` (which threads one global RNG through all lines)
-- it is the same generative process under a different, scalable seeding
scheme.  Ground-truth fault-event lists and BRAS traffic export are not
produced on this path; the streaming cycle's consumers (store, encoder,
scorer, dispatcher) need only the Table-2 features and ticket-recency
vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.measurement.linetest import LineTester
from repro.measurement.records import N_FEATURES
from repro.netsim.faults import FaultModel, FaultState
from repro.netsim.groupfaults import GroupFaultModel, GroupFaultSchedule
from repro.netsim.physics import LinePhysics, LoopConditions
from repro.netsim.simulator import (
    SATURDAY_OFFSET,
    SimulationConfig,
    combine_shared_effects,
)
from repro.netsim.population import build_population
from repro.tickets.customers import build_customers
from repro.tickets.dispatch import Dispatcher
from repro.tickets.outage import OutageSchedule
from repro.tickets.ticketing import (
    DAY_OF_WEEK_WEIGHTS,
    TicketCategory,
    TicketLog,
    TicketSource,
)

__all__ = ["STREAM_BLOCK_LINES", "WeekBlock", "StreamingSimulator",
           "stream_weeks"]

#: Fixed RNG-substream granularity, in lines.  Chunk sizes round up to a
#: multiple of this, which is what makes every chunking bit-identical.
STREAM_BLOCK_LINES = 8192

#: Distinct spawn-key salts so the simulation stream and the customer
#: behaviour stream of a block can never collide.
_SIM_SALT = 0x53544D
_CUSTOMER_SALT = 0x435553


@dataclass(frozen=True)
class WeekBlock:
    """One chunk's Saturday campaign output for one week.

    Attributes:
        week: week index in ``[0, n_weeks)``.
        day: absolute day of the line test (``7 * week + 5``).
        start, stop: the ``[start, stop)`` line range this block covers.
        features: ``(stop - start, 25)`` float32 Table-2 matrix.
        last_ticket_day: ``(stop - start,)`` int64 most-recent customer
            ticket day strictly before ``day``, -1 where none.
    """

    week: int
    day: int
    start: int
    stop: int
    features: np.ndarray
    last_ticket_day: np.ndarray


class StreamingSimulator:
    """Chunked generation over a fixed-block-substream plant."""

    def __init__(self, config: SimulationConfig | None = None):
        self.config = config or SimulationConfig()
        cfg = self.config
        self.population = build_population(cfg.population)
        self.conditions = self.population.conditions()
        if cfg.physics_model == "reach":
            self.physics = LinePhysics()
        elif cfg.physics_model == "dmt":
            from repro.netsim.dmt import DmtLinePhysics

            self.physics = DmtLinePhysics()
        else:
            raise ValueError(
                f"physics_model must be 'reach' or 'dmt', got "
                f"{cfg.physics_model!r}"
            )
        self.tester = LineTester(physics=self.physics, config=cfg.linetest)
        self.fault_model = FaultModel(
            rate_scale=cfg.fault_rate_scale, directional=cfg.directional_faults
        )
        n = self.population.n_lines
        if cfg.group_faults is not None:
            schedule = GroupFaultSchedule.generate(
                self.population.topology, cfg.n_weeks, cfg.group_faults
            )
            self.group_faults = GroupFaultModel(schedule=schedule, n_lines=n)
        else:
            self.group_faults = None
        if self.group_faults is not None and cfg.group_faults.escalate_to_outage:
            self.outages = OutageSchedule.from_group_faults(
                self.group_faults.schedule.events,
                self.population.topology.n_dslams,
                cfg.n_weeks,
                cfg.outages,
                outage_days=cfg.group_faults.outage_days,
            )
        else:
            self.outages = OutageSchedule.generate(
                self.population.topology.n_dslams, cfg.n_weeks, cfg.outages
            )

    @property
    def n_lines(self) -> int:
        return self.population.n_lines

    # ----- chunked generation ----------------------------------------------

    def run_streaming(
        self, chunk_lines: int | None = None
    ) -> Iterator[WeekBlock]:
        """Yield :class:`WeekBlock` payloads, chunk-major then week-ordered.

        ``chunk_lines`` bounds peak memory (it is rounded *up* to a whole
        number of :data:`STREAM_BLOCK_LINES` blocks); ``None`` runs the
        whole plant as one chunk -- the monolithic reference that any
        chunked run reproduces bit for bit.
        """
        n = self.n_lines
        n_weeks = self.config.n_weeks
        if chunk_lines is None:
            chunk = n
        else:
            if chunk_lines <= 0:
                raise ValueError("chunk_lines must be positive")
            blocks = -(-chunk_lines // STREAM_BLOCK_LINES)
            chunk = blocks * STREAM_BLOCK_LINES
        for chunk_start in range(0, n, chunk):
            chunk_stop = min(chunk_start + chunk, n)
            feats: list[list[np.ndarray]] = [[] for _ in range(n_weeks)]
            lasts: list[list[np.ndarray]] = [[] for _ in range(n_weeks)]
            for start in range(chunk_start, chunk_stop, STREAM_BLOCK_LINES):
                stop = min(start + STREAM_BLOCK_LINES, chunk_stop)
                block_feats, block_lasts = self._block_weeks(
                    start, stop, start // STREAM_BLOCK_LINES
                )
                for w in range(n_weeks):
                    feats[w].append(block_feats[w])
                    lasts[w].append(block_lasts[w])
            for w in range(n_weeks):
                yield WeekBlock(
                    week=w,
                    day=w * 7 + SATURDAY_OFFSET,
                    start=chunk_start,
                    stop=chunk_stop,
                    features=np.concatenate(feats[w], axis=0),
                    last_ticket_day=np.concatenate(lasts[w]),
                )

    # ----- one block over the whole horizon --------------------------------

    def _block_rng(self, salt: int, entropy: int, block: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(entropy=entropy, spawn_key=(salt, block))
        )

    def _block_conditions(self, start: int, stop: int) -> LoopConditions:
        full = self.conditions
        return LoopConditions(
            loop_kft=full.loop_kft[start:stop],
            profile_down_kbps=full.profile_down_kbps[start:stop],
            profile_up_kbps=full.profile_up_kbps[start:stop],
            ambient_noise_db=full.ambient_noise_db[start:stop],
            static_bridge_tap=full.static_bridge_tap[start:stop],
            static_crosstalk=full.static_crosstalk[start:stop],
        )

    def _block_weeks(
        self, start: int, stop: int, block: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Simulate lines ``[start, stop)`` over every week.

        Returns per-week float32 feature matrices and int64 ticket-recency
        vectors, both indexed relative to ``start``.
        """
        cfg = self.config
        c = stop - start
        rng = self._block_rng(_SIM_SALT, cfg.seed, block)
        customers = build_customers(
            c, cfg.n_weeks, cfg.customers,
            rng=self._block_rng(_CUSTOMER_SALT, cfg.customers.seed, block),
        )
        state = FaultState.healthy(c)
        ticket_log = TicketLog()
        dispatcher = Dispatcher(cfg.atds)
        conditions = self._block_conditions(start, stop)
        dslam_idx = self.population.dslam_idx[start:stop]
        group_cfg = cfg.group_faults
        feats: list[np.ndarray] = []
        lasts: list[np.ndarray] = []

        for w in range(cfg.n_weeks):
            week_start = w * 7
            saturday = week_start + SATURDAY_OFFSET

            # 1-2. Evolve existing faults, inject new onsets.
            self.fault_model.advance_week(state, rng)
            self.fault_model.sample_onsets(state, rng, week_start)

            # 3. Shared-infrastructure degradation, restricted to the block.
            line_precursor = self.outages.precursor_strength(w)[dslam_idx]
            group_strength = None
            shared_strength = line_precursor
            if self.group_faults is not None:
                group_strength = self.group_faults.line_strength_range(
                    saturday, start, stop
                )
                shared_strength = np.maximum(line_precursor, group_strength)

            # 4. Customer reporting.
            clear_after_saturday: list[tuple[int, int]] = []
            self._edge_tickets(
                w, saturday, state, customers, dslam_idx, ticket_log,
                dispatcher, rng, clear_after_saturday,
            )
            self._precursor_calls(
                w, shared_strength, customers, dslam_idx, ticket_log, rng
            )
            self._billing_tickets(w, c, ticket_log, rng)

            # 5. Saturday line-test campaign.
            effects = combine_shared_effects(
                self.fault_model.effects(state), line_precursor,
                group_strength, cfg.outages,
                group_cfg,
            )
            dslam_down = self.outages.dslams_down_on(saturday)[dslam_idx]
            usage = customers.usage_intensity * customers.present(w)
            features = self.tester.run(
                conditions, effects, usage, dslam_down, rng
            )

            # 6. Dispatches that landed after the test clear now.
            for line, _day in clear_after_saturday:
                if state.disposition[line] >= 0:
                    state.clear(np.array([line]))

            feats.append(np.ascontiguousarray(features, dtype=np.float32))
            lasts.append(
                ticket_log.last_ticket_day_before(c, saturday).astype(np.int64)
            )
        return feats, lasts

    # ----- block-local ticket generation (mirrors DslSimulator) ------------

    def _report_days(
        self, rng: np.random.Generator, week_start: int, count: int
    ) -> np.ndarray:
        return week_start + rng.choice(7, size=count, p=DAY_OF_WEEK_WEIGHTS)

    def _edge_tickets(
        self,
        week: int,
        saturday: int,
        state: FaultState,
        customers,
        dslam_idx: np.ndarray,
        ticket_log: TicketLog,
        dispatcher: Dispatcher,
        rng: np.random.Generator,
        clear_after_saturday: list[tuple[int, int]],
    ) -> None:
        cfg = self.config
        week_start = week * 7
        active = np.flatnonzero(state.active)
        if active.size == 0:
            return
        kinds = state.disposition[active]
        severity = state.severity[active]
        perceive = self.fault_model.arrays.perceivability[kinds]
        usage_mult = (
            cfg.notice_usage_floor
            + (1.0 - cfg.notice_usage_floor) * customers.usage_intensity[active]
        )
        present = customers.present(week)[active]
        p_report = (
            perceive * severity * usage_mult
            * customers.report_propensity[active] * present
        )
        reporters = active[rng.random(active.size) < p_report]
        if reporters.size == 0:
            return
        days = self._report_days(rng, week_start, reporters.size)
        days = np.maximum(days, state.onset_day[reporters])
        days = np.minimum(days, week_start + 6)
        for line, day in zip(reporters, days):
            line = int(line)
            day = int(day)
            disposition = int(state.disposition[line])
            if disposition < 0:
                continue  # cleared earlier in this loop (failed-fix retries)
            dslam = int(dslam_idx[line])
            if self.outages.dslams_down_on(day)[dslam]:
                ticket_log.record_ivr(line, day, dslam, disposition)
                continue
            ticket = ticket_log.open_ticket(
                line_id=line,
                day=day,
                category=TicketCategory.CUSTOMER_EDGE,
                source=TicketSource.CUSTOMER,
                fault_disposition=disposition,
                fault_onset_day=int(state.onset_day[line]),
            )
            record = dispatcher.resolve(
                ticket.ticket_id, line, day, disposition, rng
            )
            ticket.resolved_day = record.day
            ticket.recorded_disposition = record.recorded_disposition
            if record.fixed:
                if record.day <= saturday:
                    state.clear(np.array([line]))
                else:
                    clear_after_saturday.append((line, record.day))

    def _precursor_calls(
        self,
        week: int,
        shared_strength: np.ndarray,
        customers,
        dslam_idx: np.ndarray,
        ticket_log: TicketLog,
        rng: np.random.Generator,
    ) -> None:
        cfg = self.config
        week_start = week * 7
        affected = np.flatnonzero(shared_strength > 0)
        if affected.size == 0:
            return
        p_call = (
            cfg.precursor_report_rate
            * shared_strength[affected]
            * customers.usage_intensity[affected]
            * customers.present(week)[affected]
        )
        callers = affected[rng.random(affected.size) < p_call]
        if callers.size == 0:
            return
        days = self._report_days(rng, week_start, callers.size)
        for line, day in zip(callers, days):
            dslam = int(dslam_idx[int(line)])
            if self.outages.dslams_down_on(int(day))[dslam]:
                ticket_log.record_ivr(int(line), int(day), dslam, -1)
            else:
                ticket_log.open_ticket(
                    line_id=int(line),
                    day=int(day),
                    category=TicketCategory.OTHER,
                    source=TicketSource.CUSTOMER,
                )

    def _billing_tickets(
        self, week: int, n: int, ticket_log: TicketLog,
        rng: np.random.Generator,
    ) -> None:
        count = rng.binomial(n, self.config.billing_ticket_rate)
        if count == 0:
            return
        lines = rng.choice(n, size=count, replace=False)
        days = self._report_days(rng, week * 7, count)
        for line, day in zip(lines, days):
            ticket_log.open_ticket(
                line_id=int(line),
                day=int(day),
                category=TicketCategory.BILLING,
                source=TicketSource.CUSTOMER,
            )


def stream_weeks(
    config: SimulationConfig | None = None, chunk_lines: int | None = None
) -> Iterator[WeekBlock]:
    """Convenience wrapper: build a :class:`StreamingSimulator` and stream."""
    yield from StreamingSimulator(config).run_streaming(chunk_lines)
