"""Customer-edge component and disposition catalog.

Fig. 2 / Table 1 of the paper partition customer-edge problems into four
major locations along the copper path, in testing order from the customer
inward:

* **HN** -- the home network (modem, filters, splitters, inside wiring,
  jacks, software, NIC, ...);
* **F2** -- the path from the home network to the crossbox (aerial/buried
  drop, protector, DEMARC, jumper, MTU, ...);
* **F1** -- the path from the crossbox to the DSLAM (cable pairs, bridge
  taps, wet/corroded conductors, buried terminals, ...);
* **DS** -- the DSLAM end (line speed configuration, pronto cards, DSLAM
  wiring, digital stream / ATM transport, ...).

Section 6.3 trains locator models for the **52 dispositions** that occur
more than 20 times, covering 81.9 % of customer-edge problems.  The catalog
below defines exactly 52 dispositions with:

* a prior weekly onset rate (no single disposition dominates its location,
  per Section 2.2);
* severity dynamics (hard failures arrive at full severity; degradations
  grow week over week; intermittent faults can self-clear);
* a customer *perceivability* (hard outages get reported fast, slow-speed
  and intermittent problems slowly -- this drives Fig. 8);
* an :class:`EffectSignature` describing how the fault perturbs the
  physical-layer line features of Table 2 (noise, attenuation, attainable
  rate, code violations, dropouts, bridge-tap / crosstalk flags, modem
  visibility).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Location",
    "EffectSignature",
    "Disposition",
    "DISPOSITIONS",
    "DISPOSITION_INDEX",
    "dispositions_at",
    "DispositionArrays",
    "disposition_arrays",
]


class Location(enum.IntEnum):
    """The four major problem locations of Fig. 2, in field-testing order."""

    HN = 0
    F2 = 1
    F1 = 2
    DS = 3

    @property
    def description(self) -> str:
        return _LOCATION_DESCRIPTIONS[self]


_LOCATION_DESCRIPTIONS = {
    Location.HN: "home network (customer premises)",
    Location.F2: "path between the home network and the crossbox",
    Location.F1: "path between the crossbox and the DSLAM",
    Location.DS: "the DSLAM and upstream transport",
}


@dataclass(frozen=True)
class EffectSignature:
    """How a fault at full severity perturbs the physical layer.

    Continuous effects are scaled by the fault's current severity in
    [0, 1]; boolean flags switch on once severity crosses 0.25.

    Attributes:
        noise_db: added noise (dB) on the loop; raises code violations and
            lowers the noise margin and attainable rate.
        atten_db: added signal attenuation (dB).
        rate_factor: multiplier (<= 1) on the attainable rate -- models
            capacity-destroying defects such as bridge taps or bad cards.
        cv_rate: added code-violation event rate (events per 15-minute
            interval at full severity).
        dropout: probability per day that the line drops sync entirely.
        off_prob: probability the modem looks *off* during the weekly test
            (device dead or customer powered it off in frustration).
        sets_bt: whether the fault makes a bridge tap detectable.
        sets_crosstalk: whether the fault makes crosstalk detectable.
        cells_factor: multiplier on observed traffic cell counts (a dying
            line carries less traffic).
    """

    noise_db: float = 0.0
    atten_db: float = 0.0
    rate_factor: float = 1.0
    cv_rate: float = 0.0
    dropout: float = 0.0
    off_prob: float = 0.0
    sets_bt: bool = False
    sets_crosstalk: bool = False
    cells_factor: float = 1.0


@dataclass(frozen=True)
class Disposition:
    """One resolvable customer-edge problem (a Table-1 row).

    Attributes:
        code: stable short identifier, e.g. ``"hn-modem-defective"``.
        name: human-readable disposition note text.
        location: the major location where technicians resolve it.
        onset_rate: weekly probability that a healthy line develops this
            fault (summed over the catalog this sets the edge-problem
            rate of the simulated plant).
        perceivability: weekly probability that an affected, on-site,
            actively-using customer notices a full-severity instance.
        hard_failure: arrives at full severity (service-killing) rather
            than degrading gradually.
        severity_growth: weekly severity increment for degradations.
        self_clear: weekly probability the fault clears without a dispatch
            (intermittent faults).
        effect: physical-layer signature at full severity.
    """

    code: str
    name: str
    location: Location
    onset_rate: float
    perceivability: float
    hard_failure: bool = False
    severity_growth: float = 0.25
    self_clear: float = 0.0
    effect: EffectSignature = field(default_factory=EffectSignature)


def _hn(code, name, rate, perceive, **kw) -> Disposition:
    return Disposition(code, name, Location.HN, rate, perceive, **kw)


def _f2(code, name, rate, perceive, **kw) -> Disposition:
    return Disposition(code, name, Location.F2, rate, perceive, **kw)


def _f1(code, name, rate, perceive, **kw) -> Disposition:
    return Disposition(code, name, Location.F1, rate, perceive, **kw)


def _ds(code, name, rate, perceive, **kw) -> Disposition:
    return Disposition(code, name, Location.DS, rate, perceive, **kw)


# Weekly onset rates are per 10,000 lines (divided out below) so the table
# reads naturally; they sum to ~90 => ~0.9 % of lines develop an edge
# problem per week, which reproduces the paper's regime of thousands of
# weekly tickets per million lines once perceivability thins them out.
_R = 1e-4

DISPOSITIONS: tuple[Disposition, ...] = (
    # ----- HN: home network (16 dispositions) ---------------------------
    _hn("hn-modem-defective", "Defective DSL modem replaced", 6.0 * _R, 0.85,
        hard_failure=True,
        effect=EffectSignature(dropout=0.8, off_prob=0.75, cells_factor=0.05)),
    _hn("hn-modem-firmware", "DSL modem firmware reset/reloaded", 2.5 * _R, 0.35,
        self_clear=0.08,
        effect=EffectSignature(dropout=0.25, cv_rate=8.0, off_prob=0.2,
                               cells_factor=0.6)),
    _hn("hn-modem-power", "DSL modem power supply replaced", 1.6 * _R, 0.8,
        hard_failure=True,
        effect=EffectSignature(dropout=0.7, off_prob=0.85, cells_factor=0.05)),
    _hn("hn-filter-missing", "Missing microfilter installed", 3.0 * _R, 0.3,
        severity_growth=1.0,
        effect=EffectSignature(noise_db=6.0, cv_rate=18.0, dropout=0.1,
                               cells_factor=0.85)),
    _hn("hn-filter-defective", "Defective microfilter replaced", 2.4 * _R, 0.25,
        effect=EffectSignature(noise_db=5.0, cv_rate=14.0, dropout=0.08,
                               cells_factor=0.9)),
    _hn("hn-splitter-defective", "Defective splitter replaced", 2.0 * _R, 0.3,
        effect=EffectSignature(noise_db=4.0, atten_db=3.0, cv_rate=10.0,
                               dropout=0.12, cells_factor=0.85)),
    _hn("hn-splitter-corroded", "Corroded splitter contacts cleaned", 1.4 * _R, 0.2,
        severity_growth=0.15,
        effect=EffectSignature(noise_db=3.5, atten_db=2.0, cv_rate=8.0,
                               cells_factor=0.9)),
    _hn("hn-cable-defective", "Defective network cable replaced", 2.2 * _R, 0.45,
        effect=EffectSignature(dropout=0.3, cv_rate=6.0, cells_factor=0.5)),
    _hn("hn-cable-loose", "Loose cable connection reseated", 1.8 * _R, 0.35,
        self_clear=0.12,
        effect=EffectSignature(dropout=0.25, cv_rate=5.0, cells_factor=0.6)),
    _hn("hn-inside-wire-wet", "Wet inside wiring dried/replaced", 1.6 * _R, 0.25,
        severity_growth=0.2, self_clear=0.05,
        effect=EffectSignature(noise_db=7.0, cv_rate=20.0, dropout=0.15,
                               cells_factor=0.8)),
    _hn("hn-inside-wire-corroded", "Corroded inside wiring replaced", 1.5 * _R, 0.2,
        severity_growth=0.12,
        effect=EffectSignature(noise_db=5.5, atten_db=4.0, cv_rate=15.0,
                               cells_factor=0.85)),
    _hn("hn-inside-wire-cut", "Cut inside wiring spliced", 1.2 * _R, 0.9,
        hard_failure=True,
        effect=EffectSignature(dropout=0.95, off_prob=0.4, cells_factor=0.02)),
    _hn("hn-jack-defective", "Defective wall jack replaced", 1.5 * _R, 0.3,
        effect=EffectSignature(noise_db=3.0, cv_rate=7.0, dropout=0.1,
                               cells_factor=0.9)),
    _hn("hn-software-misconfig", "Customer software/PPPoE reconfigured", 2.6 * _R, 0.5,
        severity_growth=1.0, self_clear=0.1,
        effect=EffectSignature(cells_factor=0.1)),
    _hn("hn-nic-defective", "Defective NIC replaced", 1.2 * _R, 0.45,
        hard_failure=True,
        effect=EffectSignature(cells_factor=0.05)),
    _hn("hn-router-misconfig", "Home router reconfigured", 1.8 * _R, 0.4,
        severity_growth=1.0, self_clear=0.1,
        effect=EffectSignature(cells_factor=0.2)),
    # ----- F2: home network <-> crossbox (12 dispositions) --------------
    _f2("f2-aerial-drop-replaced", "Aerial drop wire replaced", 2.2 * _R, 0.4,
        severity_growth=0.3,
        effect=EffectSignature(noise_db=6.0, atten_db=5.0, cv_rate=16.0,
                               dropout=0.2, cells_factor=0.8)),
    _f2("f2-aerial-drop-damaged", "Storm-damaged drop re-tensioned", 1.4 * _R, 0.5,
        hard_failure=True, self_clear=0.02,
        effect=EffectSignature(dropout=0.6, noise_db=8.0, cv_rate=25.0,
                               cells_factor=0.3)),
    _f2("f2-demarc-access-point", "Access point (DEMARC) repaired", 1.8 * _R, 0.3,
        effect=EffectSignature(noise_db=4.0, cv_rate=9.0, dropout=0.1,
                               cells_factor=0.9)),
    _f2("f2-buried-service-wire", "Existing buried service wire repaired", 1.9 * _R, 0.25,
        severity_growth=0.15,
        effect=EffectSignature(noise_db=5.0, atten_db=4.0, cv_rate=12.0,
                               dropout=0.12, cells_factor=0.85)),
    _f2("f2-protector-unit-defect", "Defect in protector unit fixed", 1.6 * _R, 0.3,
        effect=EffectSignature(noise_db=5.0, atten_db=2.0, cv_rate=11.0,
                               dropout=0.1, cells_factor=0.9)),
    _f2("f2-wire-protector-demarc", "Wire from protector to DEMARC replaced",
        1.3 * _R, 0.25,
        effect=EffectSignature(noise_db=4.5, cv_rate=10.0, dropout=0.08,
                               cells_factor=0.9)),
    _f2("f2-jumper-defective", "Defective jumper wire replaced", 1.5 * _R, 0.3,
        effect=EffectSignature(noise_db=3.5, atten_db=2.5, cv_rate=8.0,
                               dropout=0.1, cells_factor=0.9)),
    _f2("f2-mtu-defective", "Defective MTU replaced", 1.1 * _R, 0.35,
        hard_failure=True,
        effect=EffectSignature(dropout=0.5, noise_db=4.0, cells_factor=0.4)),
    _f2("f2-drop-splice-corroded", "Corroded drop splice re-spliced", 1.2 * _R, 0.2,
        severity_growth=0.12,
        effect=EffectSignature(noise_db=5.5, atten_db=3.5, cv_rate=13.0,
                               cells_factor=0.85)),
    _f2("f2-ground-fault", "Ground fault at protector cleared", 1.0 * _R, 0.3,
        self_clear=0.05,
        effect=EffectSignature(noise_db=7.0, cv_rate=18.0, dropout=0.15,
                               sets_crosstalk=True, cells_factor=0.8)),
    _f2("f2-terminal-block-corroded", "Corroded terminal block replaced", 1.1 * _R, 0.2,
        severity_growth=0.12,
        effect=EffectSignature(noise_db=4.5, atten_db=3.0, cv_rate=10.0,
                               cells_factor=0.9)),
    _f2("f2-drop-clamp-loose", "Loose drop clamp secured", 0.9 * _R, 0.25,
        self_clear=0.1,
        effect=EffectSignature(noise_db=4.0, cv_rate=9.0, dropout=0.12,
                               cells_factor=0.85)),
    # ----- F1: crossbox <-> DSLAM (13 dispositions) ---------------------
    _f1("f1-cable-pair-transfer", "Service transferred to another cable pair",
        2.4 * _R, 0.3,
        severity_growth=0.2,
        effect=EffectSignature(noise_db=6.5, atten_db=4.0, cv_rate=15.0,
                               dropout=0.15, cells_factor=0.8)),
    _f1("f1-bridge-tap-removed", "Bridge tap of customer facilities removed",
        2.0 * _R, 0.2,
        severity_growth=1.0,
        effect=EffectSignature(rate_factor=0.55, noise_db=2.0, sets_bt=True,
                               cv_rate=5.0, cells_factor=0.95)),
    _f1("f1-wire-conductor-wet", "Wet wire conductor section replaced", 1.9 * _R, 0.25,
        severity_growth=0.2, self_clear=0.06,
        effect=EffectSignature(noise_db=8.0, cv_rate=22.0, dropout=0.18,
                               cells_factor=0.8)),
    _f1("f1-wire-conductor-corroded", "Corroded wire conductor replaced",
        1.7 * _R, 0.2,
        severity_growth=0.1,
        effect=EffectSignature(noise_db=6.0, atten_db=5.0, cv_rate=16.0,
                               cells_factor=0.85)),
    _f1("f1-crossbox-defect", "Defect found in crossbox repaired", 1.8 * _R, 0.3,
        effect=EffectSignature(noise_db=5.0, atten_db=3.0, cv_rate=12.0,
                               dropout=0.12, cells_factor=0.85)),
    _f1("f1-buried-terminal-defective",
        "Defective buried ready access terminal replaced", 1.5 * _R, 0.25,
        effect=EffectSignature(noise_db=5.5, cv_rate=12.0, dropout=0.1,
                               cells_factor=0.9)),
    _f1("f1-pair-cut", "Cut cable pair spliced", 1.4 * _R, 0.9,
        hard_failure=True,
        effect=EffectSignature(dropout=0.95, off_prob=0.3, cells_factor=0.02)),
    _f1("f1-cable-defect", "Defective feeder cable section replaced", 1.6 * _R, 0.3,
        severity_growth=0.18,
        effect=EffectSignature(noise_db=6.0, atten_db=4.5, cv_rate=14.0,
                               dropout=0.12, cells_factor=0.85)),
    _f1("f1-cable-stub", "Cable stub removed", 1.1 * _R, 0.2,
        severity_growth=1.0,
        effect=EffectSignature(rate_factor=0.65, sets_bt=True, cv_rate=6.0,
                               cells_factor=0.95)),
    _f1("f1-binding-post-corroded", "Corroded binding post cleaned", 1.2 * _R, 0.2,
        severity_growth=0.12,
        effect=EffectSignature(noise_db=4.5, cv_rate=10.0, sets_crosstalk=True,
                               cells_factor=0.9)),
    _f1("f1-load-coil-present", "Legacy load coil removed", 0.9 * _R, 0.25,
        severity_growth=1.0,
        effect=EffectSignature(rate_factor=0.4, atten_db=8.0, cv_rate=4.0,
                               cells_factor=0.9)),
    _f1("f1-splice-case-water", "Water in splice case pumped/sealed", 1.3 * _R, 0.25,
        severity_growth=0.2, self_clear=0.08,
        effect=EffectSignature(noise_db=7.5, cv_rate=20.0, dropout=0.16,
                               cells_factor=0.8)),
    _f1("f1-pair-imbalance", "Longitudinal pair imbalance corrected", 1.0 * _R, 0.2,
        effect=EffectSignature(noise_db=5.0, cv_rate=12.0, sets_crosstalk=True,
                               cells_factor=0.9)),
    # ----- DS: the DSLAM end (11 dispositions) --------------------------
    _ds("ds-speed-downgrade", "Speed reduced to stabilize the line", 2.6 * _R, 0.25,
        severity_growth=0.3,
        effect=EffectSignature(noise_db=4.0, cv_rate=16.0, dropout=0.2,
                               cells_factor=0.85)),
    _ds("ds-digital-stream-transport", "Digital stream transport repaired",
        1.5 * _R, 0.4,
        effect=EffectSignature(dropout=0.3, cv_rate=10.0, cells_factor=0.6)),
    _ds("ds-dslam-wiring", "Wiring at DSLAM corrected", 1.6 * _R, 0.3,
        effect=EffectSignature(noise_db=4.5, cv_rate=11.0, dropout=0.12,
                               cells_factor=0.85)),
    _ds("ds-pronto-card-abcu", "DSLAM pronto card ABCU replaced", 1.3 * _R, 0.45,
        hard_failure=True,
        effect=EffectSignature(dropout=0.5, cv_rate=15.0, off_prob=0.25,
                               cells_factor=0.4)),
    _ds("ds-pronto-card-adlu", "DSLAM pronto card ADLU replaced", 1.2 * _R, 0.45,
        hard_failure=True,
        effect=EffectSignature(dropout=0.45, cv_rate=14.0, off_prob=0.2,
                               cells_factor=0.4)),
    _ds("ds-porting", "Line ported to a different DSLAM port", 1.4 * _R, 0.3,
        effect=EffectSignature(noise_db=3.5, cv_rate=9.0, dropout=0.15,
                               cells_factor=0.8)),
    _ds("ds-atm-switch-interface", "ATM switch interface reset", 1.1 * _R, 0.4,
        self_clear=0.1,
        effect=EffectSignature(dropout=0.35, cells_factor=0.5)),
    _ds("ds-line-card-port", "DSLAM line card port replaced", 1.3 * _R, 0.4,
        hard_failure=True,
        effect=EffectSignature(dropout=0.55, cv_rate=12.0, off_prob=0.3,
                               cells_factor=0.3)),
    _ds("ds-profile-misprovision", "Line profile re-provisioned", 1.5 * _R, 0.3,
        severity_growth=1.0,
        effect=EffectSignature(rate_factor=0.6, cv_rate=6.0, cells_factor=0.9)),
    _ds("ds-dslam-software", "DSLAM software fault patched", 0.9 * _R, 0.35,
        self_clear=0.12,
        effect=EffectSignature(dropout=0.3, cv_rate=8.0, cells_factor=0.6)),
    _ds("ds-backplane-contact", "DSLAM backplane contact reseated", 0.8 * _R, 0.3,
        effect=EffectSignature(noise_db=4.0, cv_rate=10.0, dropout=0.2,
                               cells_factor=0.7)),
)

# Frequency skew: the raw per-row rates above encode the *ordering* of how
# common each disposition is; real disposition histograms are far more
# skewed (the paper's experience-model baseline locates 50 % of problems
# within its top 9 dispositions, which requires the top-9 mass to be ~0.5).
# A power transform with exponent 2 reshapes the catalog to that regime
# while preserving the ordering, the per-location mix, and the total weekly
# edge-problem rate.
_SKEW_EXPONENT = 2.0
_TOTAL_WEEKLY_RATE = 9.0e-3


def _apply_frequency_skew(
    catalog: tuple[Disposition, ...],
    exponent: float = _SKEW_EXPONENT,
    total_rate: float = _TOTAL_WEEKLY_RATE,
) -> tuple[Disposition, ...]:
    raw = np.array([d.onset_rate for d in catalog])
    skewed = raw**exponent
    skewed *= total_rate / skewed.sum()
    return tuple(
        dataclasses.replace(d, onset_rate=float(r))
        for d, r in zip(catalog, skewed)
    )


DISPOSITIONS = _apply_frequency_skew(DISPOSITIONS)

DISPOSITION_INDEX: dict[str, int] = {
    d.code: i for i, d in enumerate(DISPOSITIONS)
}

if len(DISPOSITIONS) != 52:
    raise AssertionError(
        f"disposition catalog must hold exactly 52 entries, found {len(DISPOSITIONS)}"
    )
if len(DISPOSITION_INDEX) != len(DISPOSITIONS):
    raise AssertionError("disposition codes must be unique")


def dispositions_at(location: Location) -> tuple[Disposition, ...]:
    """All catalog dispositions resolved at ``location``."""
    return tuple(d for d in DISPOSITIONS if d.location == location)


@dataclass(frozen=True)
class DispositionArrays:
    """The catalog flattened into numpy arrays for the vectorised simulator.

    Index ``k`` in every array corresponds to ``DISPOSITIONS[k]``.
    """

    onset_rate: np.ndarray
    perceivability: np.ndarray
    hard_failure: np.ndarray
    severity_growth: np.ndarray
    self_clear: np.ndarray
    location: np.ndarray
    noise_db: np.ndarray
    atten_db: np.ndarray
    rate_factor: np.ndarray
    cv_rate: np.ndarray
    dropout: np.ndarray
    off_prob: np.ndarray
    sets_bt: np.ndarray
    sets_crosstalk: np.ndarray
    cells_factor: np.ndarray

    @property
    def n(self) -> int:
        return len(self.onset_rate)


def disposition_arrays() -> DispositionArrays:
    """Flatten :data:`DISPOSITIONS` into a :class:`DispositionArrays`."""
    return DispositionArrays(
        onset_rate=np.array([d.onset_rate for d in DISPOSITIONS]),
        perceivability=np.array([d.perceivability for d in DISPOSITIONS]),
        hard_failure=np.array([d.hard_failure for d in DISPOSITIONS]),
        severity_growth=np.array([d.severity_growth for d in DISPOSITIONS]),
        self_clear=np.array([d.self_clear for d in DISPOSITIONS]),
        location=np.array([int(d.location) for d in DISPOSITIONS]),
        noise_db=np.array([d.effect.noise_db for d in DISPOSITIONS]),
        atten_db=np.array([d.effect.atten_db for d in DISPOSITIONS]),
        rate_factor=np.array([d.effect.rate_factor for d in DISPOSITIONS]),
        cv_rate=np.array([d.effect.cv_rate for d in DISPOSITIONS]),
        dropout=np.array([d.effect.dropout for d in DISPOSITIONS]),
        off_prob=np.array([d.effect.off_prob for d in DISPOSITIONS]),
        sets_bt=np.array([d.effect.sets_bt for d in DISPOSITIONS]),
        sets_crosstalk=np.array([d.effect.sets_crosstalk for d in DISPOSITIONS]),
        cells_factor=np.array([d.effect.cells_factor for d in DISPOSITIONS]),
    )
