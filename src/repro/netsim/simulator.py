"""The week-by-week DSL plant simulation.

:class:`DslSimulator` drives everything the paper's datasets contain:

* **faults** arrive on individual lines per the disposition catalog,
  degrade or kill service, and are (eventually) noticed by customers;
* **customers** report problems with a Monday-peaked weekly pattern,
  unless they are away or the IVR absorbs the call during a known outage;
* **ATDS** resolves tickets (remote fixes or truck rolls) with noisy
  technician disposition notes and occasional failed fixes;
* **DSLAM outages** are pre-scheduled, preceded by a shared-infrastructure
  degradation window that subtly worsens every line on the DSLAM;
* every **Saturday** a line-test campaign snapshots the 25 Table-2
  features for all reachable modems;
* **traffic** byte counts are exported for the lines under a sampled set
  of BRAS servers.

Time convention: day 0 is a Monday; week ``w`` covers days
``[7w, 7w+7)`` and the line test runs on day ``7w + 5`` (Saturday).

The simulator exposes a step API so the NEVERMIND operational pipeline can
interleave proactive fixes between weeks
(:meth:`DslSimulator.apply_proactive_fixes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.linetest import LineTestConfig, LineTester
from repro.measurement.records import MeasurementStore
from repro.netsim.faults import FaultEffects, FaultModel, FaultState
from repro.netsim.groupfaults import (
    LEVEL_DSLAM,
    GroupFaultConfig,
    GroupFaultModel,
    GroupFaultSchedule,
)
from repro.netsim.physics import LinePhysics
from repro.netsim.population import Population, PopulationConfig, build_population
from repro.tickets.customers import CustomerBehavior, CustomerConfig, build_customers
from repro.tickets.dispatch import (
    AtdsConfig,
    DispatchRecord,
    Dispatcher,
    GroupDispatchRecord,
)
from repro.tickets.outage import OutageConfig, OutageSchedule
from repro.tickets.ticketing import (
    DAY_OF_WEEK_WEIGHTS,
    TicketCategory,
    TicketLog,
    TicketSource,
)
from repro.traffic.usage import TrafficConfig, TrafficModel

__all__ = ["SimulationConfig", "FaultEvent", "SimulationResult", "DslSimulator",
           "SATURDAY_OFFSET", "combine_shared_effects"]

#: Day-of-week offset of the line test within each week (Saturday).
SATURDAY_OFFSET = 5


def combine_shared_effects(
    effects: FaultEffects,
    line_precursor: np.ndarray,
    group_strength: np.ndarray | None,
    outage_cfg: OutageConfig,
    group_cfg: GroupFaultConfig | None,
) -> FaultEffects:
    """Fold shared-infrastructure degradations into per-line fault effects.

    Failing shared DSLAM equipment degrades the whole transceiver path: a
    dying line card corrupts its receivers (upstream) as much as its
    transmitters (downstream), so the precursor couples into both
    directions.  Correlated group faults sit in the same shared path
    (line card or binder sheath), so they couple identically.

    Shared by :class:`DslSimulator` and the streaming engine in
    :mod:`repro.netsim.streaming` so both paths apply the exact same
    coupling; pure array math, no RNG.
    """
    has_group = group_strength is not None and np.any(group_strength)
    if not np.any(line_precursor) and not has_group:
        return effects
    noise = outage_cfg.precursor_noise_db * line_precursor
    cv = outage_cfg.precursor_cv_rate * line_precursor
    dropout = 0.1 * line_precursor
    cells_drop = 0.15 * line_precursor
    if has_group:
        noise = noise + group_cfg.noise_db * group_strength
        cv = cv + group_cfg.cv_rate * group_strength
        dropout = dropout + group_cfg.dropout * group_strength
        cells_drop = np.clip(
            cells_drop + group_cfg.cells_drop * group_strength, 0.0, 1.0
        )
    return FaultEffects(
        noise_db=effects.noise_db + noise,
        noise_db_up=effects.noise_db_up + noise,
        atten_db=effects.atten_db,
        atten_db_up=effects.atten_db_up,
        rate_factor=effects.rate_factor,
        cv_rate=effects.cv_rate + cv,
        dropout=np.clip(effects.dropout + dropout, 0.0, 1.0),
        off_prob=effects.off_prob,
        bridge_tap=effects.bridge_tap,
        crosstalk=effects.crosstalk,
        cells_factor=effects.cells_factor * (1.0 - cells_drop),
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level simulation parameters (sub-configs nest the rest).

    Attributes:
        n_weeks: simulated horizon.
        fault_rate_scale: global multiplier on catalog onset rates.
        billing_ticket_rate: weekly probability per line of a non-edge
            (billing/other) ticket.
        notice_usage_floor: minimum usage multiplier on perceivability --
            even a light user eventually notices a dead line.
        precursor_report_rate: weekly probability scale that a customer
            calls about shared-infrastructure (pre-outage) degradation.
        physics_model: "reach" (default; calibrated exponential reach/rate
            curves) or "dmt" (per-tone bit-loading model from
            :mod:`repro.netsim.dmt` -- slower to construct, physically
            derived).
        group_faults: correlated shared-plant fault process (None keeps
            the run bit-identical to pre-group-fault simulations).  When
            set, the tickets-side outage schedule is *derived* from the
            DSLAM-level group events instead of sampled independently.
        seed: master seed for the simulation's random stream.
    """

    n_weeks: int = 30
    population: PopulationConfig = field(default_factory=PopulationConfig)
    customers: CustomerConfig = field(default_factory=CustomerConfig)
    outages: OutageConfig = field(default_factory=OutageConfig)
    atds: AtdsConfig = field(default_factory=AtdsConfig)
    linetest: LineTestConfig = field(default_factory=LineTestConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    fault_rate_scale: float = 1.0
    directional_faults: bool = True
    billing_ticket_rate: float = 0.0015
    notice_usage_floor: float = 0.35
    precursor_report_rate: float = 0.05
    physics_model: str = "reach"
    group_faults: GroupFaultConfig | None = None
    seed: int = 101


@dataclass
class FaultEvent:
    """Ground-truth record of one fault's lifetime.

    Attributes:
        line_id: affected line.
        disposition: catalog index of the fault.
        onset_day: absolute day the fault appeared.
        cleared_day: absolute day it was cleared, -1 while active.
        clear_cause: "dispatch", "self", "proactive" or "" while active.
    """

    line_id: int
    disposition: int
    onset_day: int
    cleared_day: int = -1
    clear_cause: str = ""

    def active_on(self, day: int) -> bool:
        return self.onset_day <= day and (self.cleared_day < 0 or day < self.cleared_day)


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    config: SimulationConfig
    population: Population
    customers: CustomerBehavior
    measurements: MeasurementStore
    ticket_log: TicketLog
    outages: OutageSchedule
    dispatcher: Dispatcher
    traffic: "object"  # TrafficLog; typed loosely to avoid import cycles
    fault_events: list[FaultEvent]
    group_faults: GroupFaultModel | None = None

    @property
    def n_lines(self) -> int:
        return self.population.n_lines

    def fault_active_on(self, day: int) -> np.ndarray:
        """Boolean mask of lines with a ground-truth active fault on ``day``."""
        active = np.zeros(self.n_lines, dtype=bool)
        for event in self.fault_events:
            if event.active_on(day):
                active[event.line_id] = True
        return active


class DslSimulator:
    """Runs the plant forward one week at a time."""

    def __init__(self, config: SimulationConfig | None = None):
        self.config = config or SimulationConfig()
        cfg = self.config
        self.rng = np.random.default_rng(cfg.seed)
        self.population = build_population(cfg.population)
        n = self.population.n_lines
        self.customers = build_customers(n, cfg.n_weeks, cfg.customers)
        self.conditions = self.population.conditions()
        if cfg.physics_model == "reach":
            self.physics = LinePhysics()
        elif cfg.physics_model == "dmt":
            from repro.netsim.dmt import DmtLinePhysics

            self.physics = DmtLinePhysics()
        else:
            raise ValueError(
                f"physics_model must be 'reach' or 'dmt', got "
                f"{cfg.physics_model!r}"
            )
        self.tester = LineTester(physics=self.physics, config=cfg.linetest)
        self.fault_model = FaultModel(
            rate_scale=cfg.fault_rate_scale, directional=cfg.directional_faults
        )
        self.state = FaultState.healthy(n)
        self.measurements = MeasurementStore(n_lines=n, n_weeks=cfg.n_weeks)
        self.ticket_log = TicketLog()
        self.dispatcher = Dispatcher(cfg.atds)
        if cfg.group_faults is not None:
            schedule = GroupFaultSchedule.generate(
                self.population.topology, cfg.n_weeks, cfg.group_faults
            )
            self.group_faults = GroupFaultModel(schedule=schedule, n_lines=n)
        else:
            self.group_faults = None
        if self.group_faults is not None and cfg.group_faults.escalate_to_outage:
            # One consistent sample: the tickets-side outages are the
            # escalations of the netsim DSLAM group events.
            self.outages = OutageSchedule.from_group_faults(
                self.group_faults.schedule.events,
                self.population.topology.n_dslams,
                cfg.n_weeks,
                cfg.outages,
                outage_days=cfg.group_faults.outage_days,
            )
        else:
            self.outages = OutageSchedule.generate(
                self.population.topology.n_dslams, cfg.n_weeks, cfg.outages
            )
        self.fault_events: list[FaultEvent] = []
        self._event_of_line = np.full(n, -1, dtype=int)
        self.week = 0

        sampled_bras = list(range(min(cfg.traffic.sample_bras,
                                      self.population.topology.n_brases)))
        sampled_lines = np.flatnonzero(
            np.isin(self.population.bras_idx, sampled_bras)
        )
        self.traffic_model = TrafficModel(
            line_ids=sampled_lines, n_days=cfg.n_weeks * 7, config=cfg.traffic
        )
        self._traffic_slots = sampled_lines

    # ----- fault-event bookkeeping -----------------------------------------

    def _open_fault_events(self, lines: np.ndarray) -> None:
        for line in lines:
            self._event_of_line[line] = len(self.fault_events)
            self.fault_events.append(
                FaultEvent(
                    line_id=int(line),
                    disposition=int(self.state.disposition[line]),
                    onset_day=int(self.state.onset_day[line]),
                )
            )

    def _close_fault_events(self, lines: np.ndarray, day: int, cause: str) -> None:
        for line in np.atleast_1d(lines):
            idx = self._event_of_line[line]
            if idx >= 0:
                self.fault_events[idx].cleared_day = int(day)
                self.fault_events[idx].clear_cause = cause
                self._event_of_line[line] = -1

    # ----- one week ---------------------------------------------------------

    def step(self) -> int:
        """Simulate the next week; returns the week index just completed."""
        if self.week >= self.config.n_weeks:
            raise RuntimeError("simulation horizon exhausted")
        w = self.week
        cfg = self.config
        rng = self.rng
        week_start = w * 7
        saturday = week_start + SATURDAY_OFFSET

        # 1. Evolve existing faults (growth + self-clear).
        cleared = self.fault_model.advance_week(self.state, rng)
        self._close_fault_events(cleared, week_start, "self")

        # 2. New fault onsets.
        struck = self.fault_model.sample_onsets(self.state, rng, week_start)
        self._open_fault_events(struck)

        # 3. Shared-infrastructure (pre-outage) degradation this week.
        precursor = self.outages.precursor_strength(w)
        line_precursor = precursor[self.population.dslam_idx]
        group_strength = None
        shared_strength = line_precursor
        if self.group_faults is not None:
            group_strength = self.group_faults.line_strength(saturday)
            shared_strength = np.maximum(line_precursor, group_strength)

        # 4. Customer reporting.
        clear_after_saturday: list[tuple[int, int]] = []
        self._generate_edge_tickets(w, saturday, line_precursor, clear_after_saturday)
        self._generate_precursor_calls(w, shared_strength)
        self._generate_billing_tickets(w)

        # 5. Saturday line-test campaign.
        effects = self._combined_effects(line_precursor, group_strength)
        dslam_down = self.outages.dslams_down_on(saturday)[self.population.dslam_idx]
        usage = self.customers.usage_intensity * self.customers.present(w)
        features = self.tester.run(self.conditions, effects, usage, dslam_down, rng)
        self.measurements.add_week(w, saturday, features)

        # 6. Dispatches that landed after the test clear now.
        for line, day in clear_after_saturday:
            if self.state.disposition[line] >= 0:
                self._close_fault_events(np.array([line]), day, "dispatch")
                self.state.clear(np.array([line]))

        # 7. Traffic export for the sampled BRAS population.
        self._record_traffic(w, effects)

        self.week += 1
        return w

    def run(self, n_weeks: int | None = None) -> SimulationResult:
        """Run (the remainder of) the horizon and return the result bundle."""
        target = self.config.n_weeks if n_weeks is None else min(
            self.config.n_weeks, self.week + n_weeks
        )
        while self.week < target:
            self.step()
        return self.result()

    def result(self) -> SimulationResult:
        """Snapshot the current outputs (valid at any point of the run)."""
        return SimulationResult(
            config=self.config,
            population=self.population,
            customers=self.customers,
            measurements=self.measurements,
            ticket_log=self.ticket_log,
            outages=self.outages,
            dispatcher=self.dispatcher,
            traffic=self.traffic_model.finish(),
            fault_events=self.fault_events,
            group_faults=self.group_faults,
        )

    # ----- proactive interface (used by the NEVERMIND pipeline) -------------

    def apply_proactive_fixes(self, line_ids: np.ndarray, day: int) -> list[DispatchRecord]:
        """Dispatch technicians to predicted lines ahead of any complaint.

        Healthy lines close as "no trouble found"; faulty lines are fixed
        with the usual dispatch success rate.  Returns the dispatch
        records (whose ``true_disposition`` tells the caller whether the
        prediction found a real problem).
        """
        records = []
        for line in np.atleast_1d(np.asarray(line_ids, dtype=int)):
            disposition = int(self.state.disposition[line])
            ticket = self.ticket_log.open_ticket(
                line_id=int(line),
                day=day,
                category=TicketCategory.CUSTOMER_EDGE,
                source=TicketSource.NEVERMIND,
                fault_disposition=disposition,
                fault_onset_day=int(self.state.onset_day[line]),
            )
            record = self.dispatcher.resolve(
                ticket.ticket_id, int(line), day, disposition, self.rng
            )
            ticket.resolved_day = record.day
            ticket.recorded_disposition = record.recorded_disposition
            if disposition >= 0 and record.fixed:
                self._close_fault_events(np.array([line]), record.day, "proactive")
                self.state.clear(np.array([line]))
            records.append(record)
        return records

    def apply_group_fixes(
        self, groups: list[tuple[str, int]], day: int
    ) -> list[GroupDispatchRecord]:
        """Send one consolidated crew per upstream plant cluster.

        ``groups`` is a list of ``(level, group_id)`` pairs -- level
        ``"dslam"`` or ``"binder"`` -- typically the upstream clusters the
        fleet triage layer found.  If the shared plant really has an
        active group fault, the crew clears it (with the usual failed-fix
        risk); otherwise the visit closes as found-nothing.  A cleared
        DSLAM event's scheduled escalation outage still occurs (the card
        swap needs its maintenance window either way).
        """
        topo = self.population.topology
        records: list[GroupDispatchRecord] = []
        for level, group_id in groups:
            level = str(level)
            group_id = int(group_id)
            line_ids = (
                topo.lines_of_dslam(group_id)
                if level == LEVEL_DSLAM
                else topo.lines_of_binder(group_id)
            )
            event = (
                self.group_faults.find_active(level, group_id, day)
                if self.group_faults is not None
                else None
            )
            record = self.dispatcher.resolve_group(
                level, group_id, int(line_ids.size), day,
                found_fault=event is not None, rng=self.rng,
            )
            if event is not None and record.fixed:
                self.group_faults.clear_event(event, record.day)
            records.append(record)
        return records

    # ----- internals ---------------------------------------------------------

    def _combined_effects(
        self,
        line_precursor: np.ndarray,
        group_strength: np.ndarray | None = None,
    ) -> FaultEffects:
        """Line-fault effects plus the shared-infrastructure degradations."""
        return combine_shared_effects(
            self.fault_model.effects(self.state),
            line_precursor,
            group_strength,
            self.config.outages,
            self.group_faults.config if self.group_faults is not None else None,
        )

    def _sample_report_days(self, week_start: int, count: int) -> np.ndarray:
        offsets = self.rng.choice(7, size=count, p=DAY_OF_WEEK_WEIGHTS)
        return week_start + offsets

    def _generate_edge_tickets(
        self,
        week: int,
        saturday: int,
        line_precursor: np.ndarray,
        clear_after_saturday: list[tuple[int, int]],
    ) -> None:
        """Customers notice and report their line faults."""
        cfg = self.config
        rng = self.rng
        week_start = week * 7
        active = np.flatnonzero(self.state.active)
        if active.size == 0:
            return
        kinds = self.state.disposition[active]
        severity = self.state.severity[active]
        perceive = self.fault_model.arrays.perceivability[kinds]
        usage_mult = (
            cfg.notice_usage_floor
            + (1.0 - cfg.notice_usage_floor) * self.customers.usage_intensity[active]
        )
        present = self.customers.present(week)[active]
        p_report = (
            perceive
            * severity
            * usage_mult
            * self.customers.report_propensity[active]
            * present
        )
        reporters = active[rng.random(active.size) < p_report]
        if reporters.size == 0:
            return
        days = self._sample_report_days(week_start, reporters.size)
        # A fault cannot be reported before it exists.
        days = np.maximum(days, self.state.onset_day[reporters])
        days = np.minimum(days, week_start + 6)

        dslam_of = self.population.dslam_idx
        for line, day in zip(reporters, days):
            line = int(line)
            day = int(day)
            disposition = int(self.state.disposition[line])
            if disposition < 0:
                continue  # cleared earlier in this loop (failed-fix retries)
            dslam = int(dslam_of[line])
            if self.outages.dslams_down_on(day)[dslam]:
                # Known outage in the area: the IVR answers, no ticket.
                self.ticket_log.record_ivr(line, day, dslam, disposition)
                continue
            ticket = self.ticket_log.open_ticket(
                line_id=line,
                day=day,
                category=TicketCategory.CUSTOMER_EDGE,
                source=TicketSource.CUSTOMER,
                fault_disposition=disposition,
                fault_onset_day=int(self.state.onset_day[line]),
            )
            record = self.dispatcher.resolve(
                ticket.ticket_id, line, day, disposition, rng
            )
            ticket.resolved_day = record.day
            ticket.recorded_disposition = record.recorded_disposition
            if record.fixed:
                if record.day <= saturday:
                    self._close_fault_events(np.array([line]), record.day, "dispatch")
                    self.state.clear(np.array([line]))
                else:
                    clear_after_saturday.append((line, record.day))

    def _generate_precursor_calls(self, week: int, line_precursor: np.ndarray) -> None:
        """Calls about shared-infrastructure degradation (outage-class)."""
        cfg = self.config
        rng = self.rng
        week_start = week * 7
        affected = np.flatnonzero(line_precursor > 0)
        if affected.size == 0:
            return
        p_call = (
            cfg.precursor_report_rate
            * line_precursor[affected]
            * self.customers.usage_intensity[affected]
            * self.customers.present(week)[affected]
        )
        callers = affected[rng.random(affected.size) < p_call]
        if callers.size == 0:
            return
        days = self._sample_report_days(week_start, callers.size)
        dslam_of = self.population.dslam_idx
        for line, day in zip(callers, days):
            dslam = int(dslam_of[int(line)])
            if self.outages.dslams_down_on(int(day))[dslam]:
                self.ticket_log.record_ivr(int(line), int(day), dslam, -1)
            else:
                # Network-level problem: categorised outside customer edge.
                self.ticket_log.open_ticket(
                    line_id=int(line),
                    day=int(day),
                    category=TicketCategory.OTHER,
                    source=TicketSource.CUSTOMER,
                )

    def _generate_billing_tickets(self, week: int) -> None:
        cfg = self.config
        rng = self.rng
        n = self.population.n_lines
        count = rng.binomial(n, cfg.billing_ticket_rate)
        if count == 0:
            return
        lines = rng.choice(n, size=count, replace=False)
        days = self._sample_report_days(week * 7, count)
        for line, day in zip(lines, days):
            self.ticket_log.open_ticket(
                line_id=int(line),
                day=int(day),
                category=TicketCategory.BILLING,
                source=TicketSource.CUSTOMER,
            )

    def _record_traffic(self, week: int, effects: FaultEffects) -> None:
        slots = self._traffic_slots
        if slots.size == 0:
            return
        throughput = effects.cells_factor[slots] * np.clip(
            1.0 - effects.dropout[slots], 0.0, 1.0
        )
        week_days = week * 7 + np.arange(7)
        down_by_day = np.stack(
            [self.outages.dslams_down_on(int(d)) for d in week_days], axis=1
        )  # (n_dslams, 7)
        dslam_down = down_by_day[self.population.dslam_idx[slots], :]
        self.traffic_model.record_week(
            week,
            usage_intensity=self.customers.usage_intensity[slots],
            present=self.customers.present(week)[slots],
            throughput_factor=throughput,
            dslam_down_days=dslam_down,
            rng=self.rng,
        )
