"""Vectorised fault state and dynamics for the simulated plant.

Each line carries at most one active customer-edge fault at a time (the
paper notes that when several devices fail, the recorded disposition is the
device closest to the end host -- modelling the dominant fault captures the
same observable).  A fault is a reference into the 52-entry disposition
catalog plus a severity in [0, 1]:

* *hard failures* arrive at severity 1 (service-killing);
* *degradations* arrive at a small severity and grow week over week;
* *intermittent* faults may self-clear before anyone acts.

The :meth:`FaultModel.effects` method turns the per-line fault state into
per-line physical-effect arrays for :class:`repro.netsim.physics.LinePhysics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.components import DispositionArrays, disposition_arrays

__all__ = ["FaultState", "FaultEffects", "FaultModel"]

_FLAG_SEVERITY = 0.25  # severity above which boolean signatures switch on


@dataclass
class FaultState:
    """Per-line fault bookkeeping (parallel arrays over lines).

    Attributes:
        disposition: catalog index of the active fault, -1 when healthy.
        severity: current severity in [0, 1]; 0 when healthy.
        onset_day: absolute simulation day the fault appeared, -1 if none.
    """

    disposition: np.ndarray
    severity: np.ndarray
    onset_day: np.ndarray

    @classmethod
    def healthy(cls, n_lines: int) -> "FaultState":
        """A fully healthy plant of ``n_lines`` lines."""
        return cls(
            disposition=np.full(n_lines, -1, dtype=int),
            severity=np.zeros(n_lines),
            onset_day=np.full(n_lines, -1, dtype=int),
        )

    @property
    def n_lines(self) -> int:
        return len(self.disposition)

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of lines with an active fault."""
        return self.disposition >= 0

    def clear(self, lines: np.ndarray) -> None:
        """Return the given lines to the healthy state."""
        self.disposition[lines] = -1
        self.severity[lines] = 0.0
        self.onset_day[lines] = -1


#: Downstream / upstream coupling of a fault's noise and attenuation by
#: major location.  A defect near the customer end (HN/F2) sits next to the
#: upstream transmitter and hurts the upstream direction more; a defect at
#: the DSLAM end (DS) couples into the downstream path; mid-loop plant
#: (F1) hits both directions alike.  This directional asymmetry is the main
#: physical clue the trouble locator can learn from line tests alone.
_LOCATION_DN_FACTOR = np.array([0.75, 0.85, 1.0, 1.30])  # HN, F2, F1, DS
_LOCATION_UP_FACTOR = np.array([1.35, 1.20, 1.0, 0.70])


@dataclass(frozen=True)
class FaultEffects:
    """Severity-scaled physical effects per line (inputs to the physics).

    ``noise_db`` / ``atten_db`` are the downstream penalties;
    ``noise_db_up`` / ``atten_db_up`` the upstream ones (they differ by the
    fault location's directional coupling).
    """

    noise_db: np.ndarray
    noise_db_up: np.ndarray
    atten_db: np.ndarray
    atten_db_up: np.ndarray
    rate_factor: np.ndarray
    cv_rate: np.ndarray
    dropout: np.ndarray
    off_prob: np.ndarray
    bridge_tap: np.ndarray
    crosstalk: np.ndarray
    cells_factor: np.ndarray


@dataclass
class FaultModel:
    """Samples onsets and evolves fault severities.

    Attributes:
        rate_scale: global multiplier on all catalog onset rates; lets
            experiments densify faults without touching the catalog.
        directional: apply the location-dependent downstream/upstream
            coupling (the default).  Disabling it makes every fault hit
            both directions identically -- the ablation that shows how
            much of the trouble locator's edge comes from directional
            physics.
        arrays: the flattened disposition catalog.
    """

    rate_scale: float = 1.0
    directional: bool = True
    arrays: DispositionArrays = field(default_factory=disposition_arrays)

    def __post_init__(self) -> None:
        if self.rate_scale < 0:
            raise ValueError("rate_scale must be non-negative")
        rates = self.arrays.onset_rate * self.rate_scale
        self._total_rate = float(np.sum(rates))
        if self._total_rate >= 1.0:
            raise ValueError(
                f"scaled weekly onset probability {self._total_rate:.3f} >= 1; "
                "lower rate_scale"
            )
        self._type_probs = (
            rates / self._total_rate if self._total_rate > 0 else rates
        )

    @property
    def weekly_onset_probability(self) -> float:
        """Probability a healthy line develops some fault this week."""
        return self._total_rate

    def sample_onsets(
        self, state: FaultState, rng: np.random.Generator, week_start_day: int
    ) -> np.ndarray:
        """Inject this week's new faults into ``state``.

        Only currently healthy lines are eligible.  Returns the indices of
        the newly faulted lines.
        """
        healthy = np.flatnonzero(~state.active)
        if healthy.size == 0 or self._total_rate == 0:
            return np.empty(0, dtype=int)
        struck = healthy[rng.random(healthy.size) < self._total_rate]
        if struck.size == 0:
            return struck
        kinds = rng.choice(self.arrays.n, size=struck.size, p=self._type_probs)
        state.disposition[struck] = kinds
        hard = self.arrays.hard_failure[kinds]
        initial = np.where(hard, 1.0, 0.15 + 0.15 * rng.random(struck.size))
        state.severity[struck] = initial
        state.onset_day[struck] = week_start_day + rng.integers(0, 7, size=struck.size)
        return struck

    def advance_week(self, state: FaultState, rng: np.random.Generator) -> np.ndarray:
        """Grow severities and apply self-clearing; returns self-cleared lines."""
        active = np.flatnonzero(state.active)
        if active.size == 0:
            return active
        kinds = state.disposition[active]
        growth = self.arrays.severity_growth[kinds]
        state.severity[active] = np.clip(state.severity[active] + growth, 0.0, 1.0)
        clears = active[rng.random(active.size) < self.arrays.self_clear[kinds]]
        state.clear(clears)
        return clears

    def effects(self, state: FaultState) -> FaultEffects:
        """Severity-scaled per-line physical effects of the current faults."""
        n = state.n_lines
        noise_dn = np.zeros(n)
        noise_up = np.zeros(n)
        atten_dn = np.zeros(n)
        atten_up = np.zeros(n)
        rate_factor = np.ones(n)
        cv = np.zeros(n)
        dropout = np.zeros(n)
        off = np.zeros(n)
        bt = np.zeros(n, dtype=bool)
        xt = np.zeros(n, dtype=bool)
        cells = np.ones(n)

        active = np.flatnonzero(state.active)
        if active.size:
            kinds = state.disposition[active]
            sev = state.severity[active]
            locations = self.arrays.location[kinds]
            if self.directional:
                dn = _LOCATION_DN_FACTOR[locations]
                up = _LOCATION_UP_FACTOR[locations]
            else:
                dn = np.ones(active.size)
                up = np.ones(active.size)
            noise_dn[active] = self.arrays.noise_db[kinds] * sev * dn
            noise_up[active] = self.arrays.noise_db[kinds] * sev * up
            atten_dn[active] = self.arrays.atten_db[kinds] * sev * dn
            atten_up[active] = self.arrays.atten_db[kinds] * sev * up
            rate_factor[active] = 1.0 - sev * (1.0 - self.arrays.rate_factor[kinds])
            cv[active] = self.arrays.cv_rate[kinds] * sev
            dropout[active] = self.arrays.dropout[kinds] * sev
            off[active] = self.arrays.off_prob[kinds] * sev
            flags_on = sev >= _FLAG_SEVERITY
            bt[active] = self.arrays.sets_bt[kinds] & flags_on
            xt[active] = self.arrays.sets_crosstalk[kinds] & flags_on
            cells[active] = 1.0 - sev * (1.0 - self.arrays.cells_factor[kinds])
        return FaultEffects(
            noise_db=noise_dn,
            noise_db_up=noise_up,
            atten_db=atten_dn,
            atten_db_up=atten_up,
            rate_factor=rate_factor,
            cv_rate=cv,
            dropout=dropout,
            off_prob=off,
            bridge_tap=bt,
            crosstalk=xt,
            cells_factor=cells,
        )
