"""DSL access-network simulator: the substrate the paper's data came from.

The paper evaluates NEVERMIND on a year of proprietary data from a major US
DSL provider.  This package replaces that plant with a generative model of
the same architecture (Fig. 1 of the paper):

    customer home network -> dedicated copper loop -> DSLAM -> ATM -> BRAS

* :mod:`repro.netsim.profiles` -- subscriber service profiles and their
  expected line-feature values.
* :mod:`repro.netsim.components` -- the catalog of customer-edge
  dispositions across the four major locations HN / F2 / F1 / DS
  (Table 1 / Fig 2), with onset rates, severity dynamics, perceivability
  and physical-effect signatures.
* :mod:`repro.netsim.physics` -- simplified twisted-pair loop physics that
  maps (loop length, profile, fault effects) to the Table-2 line features.
* :mod:`repro.netsim.topology` -- the BRAS/ATM/DSLAM/line object model.
* :mod:`repro.netsim.population` -- builds a subscriber population.
* :mod:`repro.netsim.faults` -- vectorised fault state and dynamics.
* :mod:`repro.netsim.simulator` -- the week-by-week simulation loop that
  emits line measurements, customer tickets, outages, dispatches and
  per-customer traffic.
"""

from repro.netsim.components import (
    DISPOSITIONS,
    Disposition,
    EffectSignature,
    Location,
    dispositions_at,
)
from repro.netsim.faults import FaultModel, FaultState
from repro.netsim.physics import LinePhysics, LoopConditions
from repro.netsim.population import Population, PopulationConfig, build_population
from repro.netsim.profiles import PROFILES, ServiceProfile, profile_by_name
from repro.netsim.simulator import DslSimulator, SimulationConfig, SimulationResult
from repro.netsim.streaming import (
    STREAM_BLOCK_LINES,
    StreamingSimulator,
    WeekBlock,
    stream_weeks,
)
from repro.netsim.topology import Bras, Dslam, Line, Topology

__all__ = [
    "DISPOSITIONS",
    "Disposition",
    "EffectSignature",
    "Location",
    "dispositions_at",
    "FaultModel",
    "FaultState",
    "LinePhysics",
    "LoopConditions",
    "Population",
    "PopulationConfig",
    "build_population",
    "PROFILES",
    "ServiceProfile",
    "profile_by_name",
    "DslSimulator",
    "SimulationConfig",
    "SimulationResult",
    "STREAM_BLOCK_LINES",
    "StreamingSimulator",
    "WeekBlock",
    "stream_weeks",
    "Bras",
    "Dslam",
    "Line",
    "Topology",
]
