"""Object model of the DSL access network hierarchy (Fig. 1).

The hierarchy is: BRAS -> ATM switch -> DSLAM -> dedicated copper line ->
customer home network.  The ATM layer is transparent to everything the
paper measures, so we keep BRAS and DSLAM as the two aggregation levels
(the paper's outage analysis operates on DSLAMs and the traffic analysis
on BRAS servers).

Below the DSLAM, copper pairs do not run individually to each home: they
share **binder groups** -- bundles of 10-25 pairs pulled together through
the F1/F2 plant segments (feeder and distribution cable).  A water-logged
splice case or a rodent-chewed sheath degrades *every pair in the binder*
at once, which is exactly the cross-line signature the plant-triage layer
(:mod:`repro.fleet`) groups on.  Binders are modelled as a partition of
each DSLAM's lines: ``binder_of_line`` / ``lines_of_binder`` give the
id-level lookups, mirroring the DSLAM-level ones.

The heavy per-line state lives in :class:`repro.netsim.population.Population`
as parallel numpy arrays; this module provides the id-and-membership view
used for grouping, reporting and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Line", "Dslam", "Binder", "Bras", "Topology"]


@dataclass(frozen=True)
class Line:
    """A dedicated subscriber loop.

    Attributes:
        line_id: index of this line in all population arrays.
        dslam_id: serving DSLAM index.
        bras_id: upstream BRAS index.
        loop_kft: working loop length in kilofeet.
        profile: service-tier name.
    """

    line_id: int
    dslam_id: int
    bras_id: int
    loop_kft: float
    profile: str


@dataclass(frozen=True)
class Dslam:
    """A DSL access multiplexer terminating several tens of lines.

    Attributes:
        dslam_id: index of this DSLAM.
        bras_id: upstream BRAS index.
        geo: coarse geolocation bucket (used only for reporting).
        line_ids: indices of the lines this DSLAM serves.
    """

    dslam_id: int
    bras_id: int
    geo: int
    line_ids: np.ndarray


@dataclass(frozen=True)
class Binder:
    """A shared F1/F2 binder segment: copper pairs bundled in one sheath.

    Attributes:
        binder_id: index of this binder.
        dslam_id: the DSLAM whose lines run through this binder (binders
            are modelled as sub-bundles of one DSLAM's plant).
        line_ids: indices of the lines sharing the binder.
    """

    binder_id: int
    dslam_id: int
    line_ids: np.ndarray


@dataclass(frozen=True)
class Bras:
    """A broadband remote access server aggregating many DSLAMs."""

    bras_id: int
    dslam_ids: np.ndarray


@dataclass
class Topology:
    """The assembled hierarchy with id-based lookups.

    ``binders`` / ``line_binder`` are optional (older hand-built
    topologies may omit them); when present they must partition the lines
    exactly like the DSLAM membership does.
    """

    brases: list[Bras] = field(default_factory=list)
    dslams: list[Dslam] = field(default_factory=list)
    line_dslam: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    line_bras: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    binders: list[Binder] = field(default_factory=list)
    line_binder: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_lines(self) -> int:
        return len(self.line_dslam)

    @property
    def n_dslams(self) -> int:
        return len(self.dslams)

    @property
    def n_brases(self) -> int:
        return len(self.brases)

    @property
    def n_binders(self) -> int:
        return len(self.binders)

    @property
    def has_binders(self) -> bool:
        """Whether this topology carries the binder-group layer."""
        return len(self.binders) > 0

    def lines_of_dslam(self, dslam_id: int) -> np.ndarray:
        """Line indices served by a DSLAM."""
        return self.dslams[dslam_id].line_ids

    def lines_of_bras(self, bras_id: int) -> np.ndarray:
        """Line indices aggregated under a BRAS."""
        return np.flatnonzero(self.line_bras == bras_id)

    def binder_of_line(self, line_id: int) -> int:
        """Binder index of a line (-1 when the topology has no binders)."""
        if not self.has_binders:
            return -1
        return int(self.line_binder[line_id])

    def lines_of_binder(self, binder_id: int) -> np.ndarray:
        """Line indices sharing a binder segment."""
        return self.binders[binder_id].line_ids

    def dslam_of_binder(self, binder_id: int) -> int:
        """The DSLAM whose plant a binder belongs to."""
        return self.binders[binder_id].dslam_id

    def validate(self) -> None:
        """Check referential integrity; raises ValueError on any breakage."""
        n = self.n_lines
        if len(self.line_bras) != n:
            raise ValueError("line_bras and line_dslam cover different lines")
        seen = np.zeros(n, dtype=bool)
        for dslam in self.dslams:
            if dslam.bras_id < 0 or dslam.bras_id >= self.n_brases:
                raise ValueError(f"DSLAM {dslam.dslam_id} references bad BRAS")
            if dslam.line_ids.size == 0:
                raise ValueError(f"DSLAM {dslam.dslam_id} serves no lines")
            if np.any(dslam.line_ids < 0) or np.any(dslam.line_ids >= n):
                raise ValueError(
                    f"DSLAM {dslam.dslam_id} references out-of-range lines"
                )
            if np.any(seen[dslam.line_ids]):
                raise ValueError("a line is served by two DSLAMs")
            seen[dslam.line_ids] = True
            if np.any(self.line_dslam[dslam.line_ids] != dslam.dslam_id):
                raise ValueError("line_dslam disagrees with DSLAM membership")
        if not np.all(seen):
            raise ValueError("some lines are not served by any DSLAM")
        for bras in self.brases:
            for d in bras.dslam_ids:
                if d < 0 or d >= self.n_dslams:
                    raise ValueError(
                        f"BRAS {bras.bras_id} references out-of-range DSLAM"
                    )
                if self.dslams[int(d)].bras_id != bras.bras_id:
                    raise ValueError("BRAS membership disagrees with DSLAM uplink")
        if self.has_binders:
            self._validate_binders(n)
        elif self.line_binder.size:
            raise ValueError("line_binder set but no binders defined")

    def _validate_binders(self, n: int) -> None:
        if len(self.line_binder) != n:
            raise ValueError("line_binder does not cover every line")
        in_binder = np.zeros(n, dtype=bool)
        for index, binder in enumerate(self.binders):
            if binder.binder_id != index:
                raise ValueError("binder ids must match their list position")
            if binder.dslam_id < 0 or binder.dslam_id >= self.n_dslams:
                raise ValueError(
                    f"binder {binder.binder_id} references bad DSLAM"
                )
            if binder.line_ids.size == 0:
                raise ValueError(f"binder {binder.binder_id} holds no lines")
            if np.any(in_binder[binder.line_ids]):
                raise ValueError("a line runs through two binders")
            in_binder[binder.line_ids] = True
            if np.any(self.line_dslam[binder.line_ids] != binder.dslam_id):
                raise ValueError(
                    "binder members are not all served by the binder's DSLAM"
                )
            if np.any(self.line_binder[binder.line_ids] != binder.binder_id):
                raise ValueError("line_binder disagrees with binder membership")
        if not np.all(in_binder):
            raise ValueError("some lines run through no binder")
