"""Object model of the DSL access network hierarchy (Fig. 1).

The hierarchy is: BRAS -> ATM switch -> DSLAM -> dedicated copper line ->
customer home network.  The ATM layer is transparent to everything the
paper measures, so we keep BRAS and DSLAM as the two aggregation levels
(the paper's outage analysis operates on DSLAMs and the traffic analysis
on BRAS servers).

The heavy per-line state lives in :class:`repro.netsim.population.Population`
as parallel numpy arrays; this module provides the id-and-membership view
used for grouping, reporting and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Line", "Dslam", "Bras", "Topology"]


@dataclass(frozen=True)
class Line:
    """A dedicated subscriber loop.

    Attributes:
        line_id: index of this line in all population arrays.
        dslam_id: serving DSLAM index.
        bras_id: upstream BRAS index.
        loop_kft: working loop length in kilofeet.
        profile: service-tier name.
    """

    line_id: int
    dslam_id: int
    bras_id: int
    loop_kft: float
    profile: str


@dataclass(frozen=True)
class Dslam:
    """A DSL access multiplexer terminating several tens of lines.

    Attributes:
        dslam_id: index of this DSLAM.
        bras_id: upstream BRAS index.
        geo: coarse geolocation bucket (used only for reporting).
        line_ids: indices of the lines this DSLAM serves.
    """

    dslam_id: int
    bras_id: int
    geo: int
    line_ids: np.ndarray


@dataclass(frozen=True)
class Bras:
    """A broadband remote access server aggregating many DSLAMs."""

    bras_id: int
    dslam_ids: np.ndarray


@dataclass
class Topology:
    """The assembled hierarchy with id-based lookups."""

    brases: list[Bras] = field(default_factory=list)
    dslams: list[Dslam] = field(default_factory=list)
    line_dslam: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    line_bras: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_lines(self) -> int:
        return len(self.line_dslam)

    @property
    def n_dslams(self) -> int:
        return len(self.dslams)

    @property
    def n_brases(self) -> int:
        return len(self.brases)

    def lines_of_dslam(self, dslam_id: int) -> np.ndarray:
        """Line indices served by a DSLAM."""
        return self.dslams[dslam_id].line_ids

    def lines_of_bras(self, bras_id: int) -> np.ndarray:
        """Line indices aggregated under a BRAS."""
        return np.flatnonzero(self.line_bras == bras_id)

    def validate(self) -> None:
        """Check referential integrity; raises ValueError on any breakage."""
        n = self.n_lines
        seen = np.zeros(n, dtype=bool)
        for dslam in self.dslams:
            if dslam.bras_id < 0 or dslam.bras_id >= self.n_brases:
                raise ValueError(f"DSLAM {dslam.dslam_id} references bad BRAS")
            if np.any(seen[dslam.line_ids]):
                raise ValueError("a line is served by two DSLAMs")
            seen[dslam.line_ids] = True
            if np.any(self.line_dslam[dslam.line_ids] != dslam.dslam_id):
                raise ValueError("line_dslam disagrees with DSLAM membership")
        if not np.all(seen):
            raise ValueError("some lines are not served by any DSLAM")
        for bras in self.brases:
            for d in bras.dslam_ids:
                if self.dslams[int(d)].bras_id != bras.bras_id:
                    raise ValueError("BRAS membership disagrees with DSLAM uplink")
