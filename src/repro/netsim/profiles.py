"""Subscriber service profiles.

Section 3.3 of the paper: *"Subscriber Profiles ... specify the parameters
(or expected values of the line features) for individual DSL lines, which
depend on the type and level of service that a customer has subscribed
for"*.  The paper's two examples -- a basic profile at 768/384 kbps and an
advanced profile at 2.5 Mbps / 768 kbps -- anchor the catalog below; the
other tiers fill out the speed ladder a 2009-era ADSL/ADSL2+ provider
offered.

Profiles matter twice:

* the *plant simulator* uses them as the provisioned sync-rate targets, and
  lines whose loop cannot physically sustain the profile show degraded
  features (the paper's 15 kft loop-length rule-of-thumb);
* the *feature encoder* divides basic features by the profile expectation
  to form the Table-3 "Profile" customer features.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceProfile", "PROFILES", "profile_by_name", "PROFILE_NAMES"]


@dataclass(frozen=True)
class ServiceProfile:
    """One service tier.

    Attributes:
        name: marketing name of the tier.
        down_kbps: provisioned downstream sync rate.
        up_kbps: provisioned upstream sync rate.
        min_down_kbps: minimum acceptable downstream rate; agents escalate
            tickets when the measured rate falls below this (Section 3.3's
            manual-rule example).
        min_up_kbps: minimum acceptable upstream rate.
        target_noise_margin_db: noise margin the DSLAM profile targets.
        max_loop_kft: loop length beyond which this tier is generally not
            supportable (the 15 kft expert rule generalised per tier).
        popularity: relative share of the subscriber base on this tier.
    """

    name: str
    down_kbps: float
    up_kbps: float
    min_down_kbps: float
    min_up_kbps: float
    target_noise_margin_db: float
    max_loop_kft: float
    popularity: float

    @property
    def expected_relative_capacity(self) -> float:
        """Healthy-line relative capacity (used rate / attainable rate).

        Operators escalate above 0.92 (Section 3.3): a healthy line should
        have attainable headroom over its provisioned rate.
        """
        return 0.75


# The speed ladder.  Popularities sum to 1 and skew toward the low tiers,
# matching a 2009 subscriber mix.
PROFILES: tuple[ServiceProfile, ...] = (
    ServiceProfile(
        name="basic",
        down_kbps=768.0,
        up_kbps=384.0,
        min_down_kbps=512.0,
        min_up_kbps=256.0,
        target_noise_margin_db=12.0,
        max_loop_kft=17.0,
        popularity=0.34,
    ),
    ServiceProfile(
        name="express",
        down_kbps=1536.0,
        up_kbps=384.0,
        min_down_kbps=1024.0,
        min_up_kbps=256.0,
        target_noise_margin_db=10.0,
        max_loop_kft=14.0,
        popularity=0.28,
    ),
    ServiceProfile(
        name="pro",
        down_kbps=2560.0,
        up_kbps=768.0,
        min_down_kbps=1792.0,
        min_up_kbps=512.0,
        target_noise_margin_db=9.0,
        max_loop_kft=11.0,
        popularity=0.22,
    ),
    ServiceProfile(
        name="elite",
        down_kbps=6016.0,
        up_kbps=768.0,
        min_down_kbps=4096.0,
        min_up_kbps=512.0,
        target_noise_margin_db=8.0,
        max_loop_kft=8.0,
        popularity=0.12,
    ),
    ServiceProfile(
        name="max-turbo",
        down_kbps=10240.0,
        up_kbps=1024.0,
        min_down_kbps=7168.0,
        min_up_kbps=768.0,
        target_noise_margin_db=6.0,
        max_loop_kft=5.5,
        popularity=0.04,
    ),
)

PROFILE_NAMES: tuple[str, ...] = tuple(p.name for p in PROFILES)

_BY_NAME = {p.name: p for p in PROFILES}


def profile_by_name(name: str) -> ServiceProfile:
    """Look up a profile by its tier name.

    Raises:
        KeyError: if the name is not a known tier.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; known tiers: {', '.join(PROFILE_NAMES)}"
        ) from None
