"""Seasonal fault modulation.

The paper's evaluation spans a full year (01/2009–12/2009); copper plants
do not fail uniformly over such a span.  Moisture faults (wet conductors,
flooded splice cases) follow precipitation; storm damage to aerial drops
clusters in storm months; in-home equipment failure is nearly flat.  This
module provides a week-indexed modulation of the catalog onset rates and a
:class:`SeasonalDslSimulator` that applies it, enabling year-scale
experiments where training and test seasons genuinely differ -- the drift
regime :mod:`repro.core.drift` monitors for.

The modulation is deliberately component-class based, not per-disposition:
each disposition is tagged by its dominant environmental driver inferred
from its code (``wet``/``water``/``splice`` -> moisture; ``aerial``/
``drop``/``storm`` -> storm; everything else -> flat).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.components import DISPOSITIONS
from repro.netsim.simulator import DslSimulator, SimulationConfig

__all__ = ["SeasonalProfile", "seasonal_rate_multipliers", "SeasonalDslSimulator"]

_MOISTURE_MARKERS = ("wet", "water", "splice", "corroded", "ground")
_STORM_MARKERS = ("aerial", "drop", "storm", "clamp")


@dataclass(frozen=True)
class SeasonalProfile:
    """Annual shape of the environmental drivers.

    Phases are in weeks within a 52-week year; amplitudes are the peak
    relative increase of the affected fault classes (0.6 = +60 % at peak).

    Attributes:
        moisture_amplitude, moisture_peak_week: wet-plant faults (spring
            rains by default).
        storm_amplitude, storm_peak_week: wind/storm damage (late-summer
            storm season by default).
        year_weeks: length of the seasonal cycle.
    """

    moisture_amplitude: float = 0.6
    moisture_peak_week: int = 14
    storm_amplitude: float = 0.8
    storm_peak_week: int = 34
    year_weeks: int = 52

    def moisture_factor(self, week: int) -> float:
        """Multiplier for moisture-driven faults in ``week``."""
        phase = 2.0 * np.pi * (week - self.moisture_peak_week) / self.year_weeks
        return float(1.0 + self.moisture_amplitude * max(0.0, np.cos(phase)))

    def storm_factor(self, week: int) -> float:
        """Multiplier for storm-driven faults in ``week``."""
        phase = 2.0 * np.pi * (week - self.storm_peak_week) / self.year_weeks
        return float(1.0 + self.storm_amplitude * max(0.0, np.cos(phase)))


def _classify(code: str) -> str:
    if any(marker in code for marker in _MOISTURE_MARKERS):
        return "moisture"
    if any(marker in code for marker in _STORM_MARKERS):
        return "storm"
    return "flat"


_CLASSES = np.array([_classify(d.code) for d in DISPOSITIONS])


def seasonal_rate_multipliers(
    week: int, profile: SeasonalProfile | None = None
) -> np.ndarray:
    """Per-disposition onset-rate multipliers for the given week."""
    profile = profile or SeasonalProfile()
    multipliers = np.ones(len(DISPOSITIONS))
    multipliers[_CLASSES == "moisture"] = profile.moisture_factor(week)
    multipliers[_CLASSES == "storm"] = profile.storm_factor(week)
    return multipliers


class SeasonalDslSimulator(DslSimulator):
    """A :class:`DslSimulator` whose fault rates breathe with the seasons.

    Before each weekly step the catalog onset rates are re-weighted by
    :func:`seasonal_rate_multipliers`; the FaultModel's total rate cap is
    respected by renormalising only the *mix* while scaling the total by
    the population-weighted mean multiplier.
    """

    def __init__(self, config: SimulationConfig | None = None,
                 profile: SeasonalProfile | None = None):
        super().__init__(config)
        self.seasonal_profile = profile or SeasonalProfile()
        self._base_type_probs = self.fault_model._type_probs.copy()
        self._base_total_rate = self.fault_model._total_rate

    def step(self) -> int:
        multipliers = seasonal_rate_multipliers(self.week, self.seasonal_profile)
        weighted = self._base_type_probs * multipliers
        mean_multiplier = float(np.sum(weighted))
        self.fault_model._type_probs = weighted / mean_multiplier
        self.fault_model._total_rate = min(
            0.99, self._base_total_rate * mean_multiplier
        )
        return super().step()
