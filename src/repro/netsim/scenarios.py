"""Canned plant scenarios.

The paper's network spans "many different geo-locations" whose plants age
and misbehave differently.  These presets bundle coherent parameter sets
so experiments and examples can say *what kind* of plant they run on
instead of hand-tuning a dozen knobs:

* ``suburban``   -- the default mixed plant;
* ``urban``      -- short loops, dense binders (crosstalk), fast tiers;
* ``rural``      -- long loops, many marginal basic-profile lines;
* ``storm_season`` -- elevated outside-plant (F2/F1) fault pressure and
  outage rate, the weeks after severe weather;
* ``outage_prone`` -- degrading DSLAM fleet, for Table-5-style analyses;
* ``correlated_faults`` -- shared DSLAM/binder degradations on top of the
  usual per-line mix, the regime the plant-triage layer exists for.
"""

from __future__ import annotations

from repro.netsim.groupfaults import GroupFaultConfig
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import SimulationConfig
from repro.tickets.customers import CustomerConfig
from repro.tickets.outage import OutageConfig

__all__ = ["SCENARIOS", "scenario", "scenario_names"]


def _suburban(n_lines: int, n_weeks: int, seed: int) -> SimulationConfig:
    """The balanced default plant (what the test suite and benches use)."""
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(n_lines=n_lines, seed=seed),
        fault_rate_scale=3.0,
        seed=seed,
    )


def _urban(n_lines: int, n_weeks: int, seed: int) -> SimulationConfig:
    """Short loops, crowded binders: fast tiers, more crosstalk, fewer
    reach problems but plenty of in-building (HN) failures."""
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(
            n_lines=n_lines,
            seed=seed,
            loop_shape=2.0,
            loop_scale_kft=1.6,          # ~3.2 kft mean
            static_crosstalk_rate=0.22,  # dense binders
            static_bridge_tap_rate=0.03,
            mean_lines_per_dslam=64,
        ),
        fault_rate_scale=3.0,
        seed=seed,
    )


def _rural(n_lines: int, n_weeks: int, seed: int) -> SimulationConfig:
    """Long copper: many loops past the 15 kft rule, marginal margins,
    lots of speed-downgrade candidates."""
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(
            n_lines=n_lines,
            seed=seed,
            loop_shape=3.2,
            loop_scale_kft=3.4,          # ~10.9 kft mean, heavy tail
            misprovision_rate=0.10,
            mean_lines_per_dslam=24,     # sparse DSLAMs
        ),
        fault_rate_scale=3.0,
        seed=seed,
    )


def _storm_season(n_lines: int, n_weeks: int, seed: int) -> SimulationConfig:
    """After severe weather: outside plant (drops, splices, buried wire)
    fails at several times the base rate and outages spike."""
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(n_lines=n_lines, seed=seed),
        outages=OutageConfig(weekly_rate=0.03, max_days=4, seed=seed),
        fault_rate_scale=6.0,
        seed=seed,
    )


def _outage_prone(n_lines: int, n_weeks: int, seed: int) -> SimulationConfig:
    """A degrading DSLAM fleet: frequent outages with long degradation
    precursors -- the regime of the paper's Table-5 analysis."""
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(n_lines=n_lines, seed=seed),
        outages=OutageConfig(
            weekly_rate=0.05, precursor_weeks=3, precursor_noise_db=6.0,
            seed=seed,
        ),
        fault_rate_scale=3.0,
        seed=seed,
    )


def _correlated_faults(n_lines: int, n_weeks: int, seed: int) -> SimulationConfig:
    """A plant with shared-infrastructure failures: a dying DSLAM line
    card plus several water-logged binder splices degrade whole groups of
    lines at once.  Per-line scoring burns top-N slots on every member;
    this is the scenario the :mod:`repro.fleet` triage layer exists for.

    Event counts scale with plant size so the cross-line signature stays
    visible from smoke-test populations up to bench scale, with at least
    one DSLAM and two binder events (the tickets-side outage schedule is
    derived from the DSLAM events, keeping both views consistent).
    """
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(n_lines=n_lines, seed=seed),
        fault_rate_scale=3.0,
        group_faults=GroupFaultConfig(
            n_dslam_events=max(1, n_lines // 5000),
            n_binder_events=max(2, n_lines // 1500),
            seed=seed,
        ),
        seed=seed,
    )


SCENARIOS = {
    "suburban": _suburban,
    "urban": _urban,
    "rural": _rural,
    "storm_season": _storm_season,
    "outage_prone": _outage_prone,
    "correlated_faults": _correlated_faults,
}


def scenario_names() -> tuple[str, ...]:
    """All available scenario presets."""
    return tuple(SCENARIOS)


def scenario(
    name: str, n_lines: int = 5000, n_weeks: int = 22, seed: int = 101
) -> SimulationConfig:
    """A :class:`SimulationConfig` for the named scenario preset.

    Raises:
        KeyError: for unknown scenario names.
    """
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None
    return build(n_lines, n_weeks, seed)
