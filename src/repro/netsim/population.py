"""Subscriber population builder.

Generates a plant of ``n_lines`` subscribers spread over DSLAMs (several
tens of lines each, per Section 2.1) and BRAS servers, with:

* loop lengths drawn from a right-skewed distribution (a gamma fit to the
  1-18 kft range of real copper plants);
* service tiers assigned by popularity but *provision-checked* against the
  loop: customers on loops beyond a tier's reach are usually provisioned a
  slower tier, with a small misprovisioning rate that leaves some lines
  born marginal (the natural candidates for the paper's "reduce speed to
  stabilize the line" disposition);
* per-line ambient noise and static bridge-tap / crosstalk flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.physics import LoopConditions
from repro.netsim.profiles import PROFILES
from repro.netsim.topology import Binder, Bras, Dslam, Topology

__all__ = ["PopulationConfig", "Population", "build_population"]


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the population generator.

    Attributes:
        n_lines: total subscriber count.
        mean_lines_per_dslam: average DSLAM fill ("several tens").
        dslams_per_bras: DSLAMs aggregated under each BRAS.
        loop_shape, loop_scale_kft: gamma parameters of the loop-length
            distribution (shape 2.2, scale 2.6 gives a 5.7 kft mean with a
            long tail past 15 kft).
        mean_lines_per_binder: average pairs per F1/F2 binder group (the
            sub-DSLAM sheath bundles the plant-triage layer groups on).
        misprovision_rate: probability a customer keeps a tier their loop
            cannot support instead of being bumped down.
        ambient_noise_sigma_db: spread of the per-line environmental noise
            penalty (half-normal).
        static_bridge_tap_rate: fraction of loops built with a legacy
            bridge tap.
        static_crosstalk_rate: fraction of loops in high-crosstalk binders.
        seed: generator seed for reproducibility.
    """

    n_lines: int = 10_000
    mean_lines_per_dslam: int = 48
    dslams_per_bras: int = 60
    mean_lines_per_binder: int = 12
    loop_shape: float = 2.2
    loop_scale_kft: float = 2.6
    misprovision_rate: float = 0.05
    ambient_noise_sigma_db: float = 1.5
    static_bridge_tap_rate: float = 0.06
    static_crosstalk_rate: float = 0.08
    seed: int = 7


@dataclass
class Population:
    """A generated subscriber base, as parallel arrays plus the topology.

    All arrays are indexed by line id in ``[0, n_lines)``.
    """

    config: PopulationConfig
    topology: Topology
    loop_kft: np.ndarray
    profile_idx: np.ndarray
    ambient_noise_db: np.ndarray
    static_bridge_tap: np.ndarray
    static_crosstalk: np.ndarray

    @property
    def n_lines(self) -> int:
        return len(self.loop_kft)

    @property
    def dslam_idx(self) -> np.ndarray:
        return self.topology.line_dslam

    @property
    def bras_idx(self) -> np.ndarray:
        return self.topology.line_bras

    @property
    def profile_down_kbps(self) -> np.ndarray:
        return np.array([p.down_kbps for p in PROFILES])[self.profile_idx]

    @property
    def profile_up_kbps(self) -> np.ndarray:
        return np.array([p.up_kbps for p in PROFILES])[self.profile_idx]

    def conditions(self) -> LoopConditions:
        """Bundle the static plant state for the physics layer."""
        down = np.array([p.down_kbps for p in PROFILES])[self.profile_idx]
        up = np.array([p.up_kbps for p in PROFILES])[self.profile_idx]
        return LoopConditions(
            loop_kft=self.loop_kft,
            profile_down_kbps=down,
            profile_up_kbps=up,
            ambient_noise_db=self.ambient_noise_db,
            static_bridge_tap=self.static_bridge_tap,
            static_crosstalk=self.static_crosstalk,
        )


def build_population(config: PopulationConfig | None = None) -> Population:
    """Generate a population from ``config`` (or the defaults)."""
    config = config or PopulationConfig()
    if config.n_lines <= 0:
        raise ValueError("n_lines must be positive")
    if config.mean_lines_per_dslam <= 0:
        raise ValueError("mean_lines_per_dslam must be positive")
    rng = np.random.default_rng(config.seed)
    n = config.n_lines

    loop_kft = rng.gamma(config.loop_shape, config.loop_scale_kft, size=n)
    loop_kft = np.clip(loop_kft, 0.3, 22.0)

    popularity = np.array([p.popularity for p in PROFILES])
    popularity = popularity / popularity.sum()
    desired = rng.choice(len(PROFILES), size=n, p=popularity)

    # Provisioning: bump customers down to the fastest tier their loop
    # supports, except for a small misprovisioned fraction.  Vectorised
    # over the (tiny) tier table so a million-line build stays cheap; the
    # tier picked per line is identical to the per-line scan it replaced.
    max_reach = np.array([p.max_loop_kft for p in PROFILES])
    profile_idx = desired.copy()
    keep_anyway = rng.random(n) < config.misprovision_rate
    need_fix = np.flatnonzero((loop_kft > max_reach[desired]) & ~keep_anyway)
    if need_fix.size:
        n_tiers = len(PROFILES)
        supported = max_reach[None, :] >= loop_kft[need_fix, None]
        candidates = supported & (
            np.arange(n_tiers)[None, :] <= desired[need_fix, None]
        )
        # Fastest supportable tier at or below the desired one, else the
        # slowest supportable, else tier 0 (even basic is marginal).
        last_candidate = n_tiers - 1 - np.argmax(candidates[:, ::-1], axis=1)
        first_supported = np.argmax(supported, axis=1)
        profile_idx[need_fix] = np.where(
            candidates.any(axis=1),
            last_candidate,
            np.where(supported.any(axis=1), first_supported, 0),
        )

    ambient = np.abs(rng.normal(0.0, config.ambient_noise_sigma_db, size=n))
    static_bt = rng.random(n) < config.static_bridge_tap_rate
    static_xt = rng.random(n) < config.static_crosstalk_rate

    topology = _build_topology(n, config, rng)
    return Population(
        config=config,
        topology=topology,
        loop_kft=loop_kft,
        profile_idx=profile_idx,
        ambient_noise_db=ambient,
        static_bridge_tap=static_bt,
        static_crosstalk=static_xt,
    )


def _build_topology(n: int, config: PopulationConfig, rng: np.random.Generator) -> Topology:
    """Assign lines to DSLAMs (variable fill) and DSLAMs to BRAS servers."""
    fills: list[int] = []
    remaining = n
    while remaining > 0:
        fill = int(np.clip(rng.normal(config.mean_lines_per_dslam,
                                      config.mean_lines_per_dslam * 0.25), 8, None))
        fill = min(fill, remaining)
        fills.append(fill)
        remaining -= fill

    line_ids = rng.permutation(n)
    line_dslam = np.empty(n, dtype=int)
    dslams: list[Dslam] = []
    cursor = 0
    n_dslams = len(fills)
    for dslam_id, fill in enumerate(fills):
        members = np.sort(line_ids[cursor:cursor + fill])
        cursor += fill
        bras_id = dslam_id // config.dslams_per_bras
        geo = dslam_id % max(1, n_dslams // 4 or 1)
        dslams.append(Dslam(dslam_id=dslam_id, bras_id=bras_id, geo=geo,
                            line_ids=members))
        line_dslam[members] = dslam_id

    n_brases = (n_dslams + config.dslams_per_bras - 1) // config.dslams_per_bras
    brases = [
        Bras(
            bras_id=b,
            dslam_ids=np.array(
                [d.dslam_id for d in dslams if d.bras_id == b], dtype=int
            ),
        )
        for b in range(n_brases)
    ]
    bras_of_dslam = np.array([d.bras_id for d in dslams], dtype=int)
    line_bras = bras_of_dslam[line_dslam]

    # Binder groups: partition each DSLAM's pairs into F1/F2 sheath
    # bundles.  Drawn last so the per-line population arrays above are
    # bit-identical to topologies built before binders existed.
    binders: list[Binder] = []
    line_binder = np.empty(n, dtype=int)
    mean_binder = max(2, config.mean_lines_per_binder)
    for dslam in dslams:
        members = dslam.line_ids
        cursor = 0
        while cursor < members.size:
            fill = int(np.clip(rng.normal(mean_binder, mean_binder * 0.25),
                               2, None))
            remaining = members.size - cursor
            # Avoid leaving a sub-minimum tail bundle behind.
            if remaining - fill < 2:
                fill = remaining
            bundle = members[cursor:cursor + fill]
            cursor += fill
            line_binder[bundle] = len(binders)
            binders.append(Binder(binder_id=len(binders),
                                  dslam_id=dslam.dslam_id, line_ids=bundle))

    topology = Topology(
        brases=brases, dslams=dslams, line_dslam=line_dslam,
        line_bras=line_bras, binders=binders, line_binder=line_binder,
    )
    topology.validate()
    return topology
