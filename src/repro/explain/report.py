"""The two-stage explanation report: diagnostic summary + next steps.

Stage one is the *diagnostic summary*: what the model saw -- calibrated
ticket probability, the exact margin, the top-K feature votes with their
measured evidence, and the line's plant context (DSLAM, binder, and any
fleet triage cluster it sits in).  Stage two is the *technician view*:
the locator's predicted disposition and the templated next steps for it
(:mod:`repro.explain.templates`).  Everything is assembled from model
state and the disposition catalog; no text is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.explain.attribution import (
    MarginAttribution,
    assemble_model_row,
    attribute_ensemble,
)
from repro.explain.templates import (
    disposition_headline,
    no_locator_steps,
    technician_steps,
)
from repro.netsim.components import DISPOSITIONS, Location, disposition_arrays

__all__ = ["ExplanationReport", "build_report"]


@dataclass
class ExplanationReport:
    """One line-week explanation, ready to serialize or render.

    Attributes:
        line, week, day: the scored line-week (day = absolute test day).
        model_version: registry version that produced the score, if any.
        p_ticket: served calibrated ticket probability.
        margin: the exact ensemble margin behind it.
        attribution_exact: whether the vote fold reproduced the margin
            bit-for-bit (always True by construction; serialized so a
            consumer can assert it).
        n_contributors: how many feature groups voted.
        attributions: top-K votes as JSON-ready dicts, rank order.
        plant: DSLAM/binder membership and optional triage cluster.
        disposition: the locator's top candidate (None without a locator).
        ranking: the locator's top candidates beyond the first.
        next_steps: templated technician steps for the top disposition.
    """

    line: int
    week: int
    day: int
    model_version: str | None
    p_ticket: float
    margin: float
    attribution_exact: bool
    n_contributors: int
    attributions: list[dict]
    plant: dict
    disposition: dict | None
    ranking: list[dict] = field(default_factory=list)
    next_steps: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {
            "line": int(self.line),
            "week": int(self.week),
            "day": int(self.day),
            "model_version": self.model_version,
            "p_ticket": float(self.p_ticket),
            "margin": float(self.margin),
            "attribution_exact": bool(self.attribution_exact),
            "n_contributors": int(self.n_contributors),
            "attributions": list(self.attributions),
            "plant": dict(self.plant),
            "disposition": self.disposition,
            "ranking": list(self.ranking),
            "next_steps": list(self.next_steps),
        }

    def render_text(self) -> str:
        """The two-stage plain-text report."""
        lines = [
            "=== diagnostic summary ===",
            (
                f"line {self.line} | week {self.week} (day {self.day})"
                f" | model {self.model_version or 'unversioned'}"
            ),
            (
                f"P(ticket within horizon) = {self.p_ticket:.4f}; "
                f"margin {self.margin:+.6f} from "
                f"{self.n_contributors} voting features"
            ),
            f"top {len(self.attributions)} contributions:",
        ]
        for a in self.attributions:
            value = "missing" if a["missing"] else f"{a['value']:g}"
            name = a["name"] or f"feature {a['feature']}"
            lines.append(
                f"  {a['rank']}. [{a['contribution']:+.4f}] {name} "
                f"= {value} -- {a['evidence']}"
            )
        lines.append(_plant_line(self.plant))
        triage = self.plant.get("triage")
        if triage is not None:
            lines.append(
                f"triage: member of a {triage['classification']} "
                f"{triage['level']} cluster "
                f"(id {triage['group_id']}, p={triage['p_value']:.2e}, "
                f"{triage['n_anomalous']}/{triage['n_lines']} lines anomalous)"
            )
        lines.append("")
        lines.append("=== technician next steps ===")
        if self.disposition is None:
            lines.append("predicted disposition: unavailable (no locator)")
        else:
            d = self.disposition
            lines.append(
                f"predicted disposition: {d['headline']} "
                f"(posterior {d['posterior']:.3f})"
            )
            for r in self.ranking[1:]:
                lines.append(
                    f"  runner-up {r['rank']}: {r['name']} "
                    f"(posterior {r['posterior']:.3f})"
                )
        for i, step in enumerate(self.next_steps, start=1):
            lines.append(f"  {i}. {step}")
        return "\n".join(lines) + "\n"


def _plant_line(plant: dict) -> str:
    parts = [f"plant: DSLAM {plant['dslam']} ({plant['dslam_lines']} lines)"]
    if plant.get("binder") is not None:
        parts.append(
            f"binder {plant['binder']} ({plant['binder_lines']} lines)"
        )
    return ", ".join(parts)


def _plant_context(line: int, topology, triage) -> dict:
    dslam = int(topology.line_dslam[line])
    plant: dict = {
        "dslam": dslam,
        "dslam_lines": int(topology.lines_of_dslam(dslam).size),
        "binder": None,
        "binder_lines": None,
        "triage": None,
    }
    binder = topology.binder_of_line(line)
    if binder >= 0:
        plant["binder"] = int(binder)
        plant["binder_lines"] = int(topology.lines_of_binder(binder).size)
    if triage is not None:
        cluster = triage.cluster_of_line(line)
        if cluster is not None:
            plant["triage"] = {
                "level": cluster.level,
                "group_id": int(cluster.group_id),
                "classification": cluster.classification,
                "p_value": float(cluster.p_value),
                "n_lines": cluster.n_lines,
                "n_anomalous": cluster.n_anomalous,
            }
    return plant


def _disposition_context(ranking: list[dict] | None) -> tuple[dict | None, list[str]]:
    """(top-candidate payload, next steps) from a locate ranking."""
    if not ranking:
        return None, no_locator_steps()
    top = ranking[0]
    code = int(top["disposition"])
    location = Location(int(disposition_arrays().location[code]))
    payload = {
        "code": code,
        "id": DISPOSITIONS[code].code,
        "name": top["name"],
        "location": location.name,
        "location_description": location.description,
        "posterior": float(top["posterior"]),
        "headline": disposition_headline(code),
    }
    return payload, technician_steps(code)


def build_report(
    *,
    line: int,
    week: int,
    day: int,
    model_version: str | None,
    predictor,
    base_row: np.ndarray,
    p_ticket: float,
    topology,
    ranking: list[dict] | None = None,
    triage=None,
    top_k: int = 5,
) -> ExplanationReport:
    """Assemble the two-stage report for one scored line-week.

    Args:
        line, week, day: the line-week being explained.
        model_version: registry version behind the score, if served.
        predictor: the fitted :class:`~repro.core.predictor.TicketPredictor`
            whose compiled ensemble produced the margin.
        base_row: the line's encoded base-feature row for ``week``.
        p_ticket: the served calibrated score (reported verbatim).
        topology: plant hierarchy for the DSLAM/binder context.
        ranking: locator candidates as produced by
            ``ScoringEngine.locate`` (None when no locator is published).
        triage: optional :class:`~repro.fleet.aggregation.TriageResult`
            for the same week's scores.
        top_k: attributions to keep in the summary.
    """
    if predictor.model is None:
        raise RuntimeError("predictor is not fitted")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    row = assemble_model_row(base_row, predictor.recipes)
    attribution: MarginAttribution = attribute_ensemble(
        predictor.model.compiled(), row, names=predictor.feature_names
    )
    disposition, next_steps = _disposition_context(ranking)
    return ExplanationReport(
        line=int(line),
        week=int(week),
        day=int(day),
        model_version=model_version,
        p_ticket=float(p_ticket),
        margin=attribution.margin,
        attribution_exact=attribution.reconstructed() == attribution.margin,
        n_contributors=len(attribution.contributions),
        attributions=[
            c.to_dict() for c in attribution.top(min(top_k, max(1, len(attribution.contributions))))
        ],
        plant=_plant_context(int(line), topology, triage),
        disposition=disposition,
        ranking=list(ranking or []),
        next_steps=next_steps,
    )
