"""Explanation subsystem: exact attributions + technician reports.

Stump ensembles are additive, so every served margin decomposes into
exact per-feature votes (:mod:`repro.explain.attribution`); the votes,
their measured evidence, the line's plant context and the locator's
predicted disposition render into a two-stage templated report
(:mod:`repro.explain.report`, :mod:`repro.explain.templates`) -- the
diagnostic-summary -> next-steps shape the paper hands to technicians.
"""

from repro.explain.attribution import (
    FeatureContribution,
    MarginAttribution,
    assemble_model_row,
    attribute_ensemble,
    attribute_head,
)
from repro.explain.report import ExplanationReport, build_report
from repro.explain.templates import (
    disposition_headline,
    no_locator_steps,
    technician_steps,
)

__all__ = [
    "FeatureContribution",
    "MarginAttribution",
    "assemble_model_row",
    "attribute_ensemble",
    "attribute_head",
    "ExplanationReport",
    "build_report",
    "disposition_headline",
    "no_locator_steps",
    "technician_steps",
]
