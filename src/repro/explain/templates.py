"""Technician-facing next-step templates, keyed by predicted disposition.

The paper's two-stage report hands the field technician a diagnostic
summary followed by concrete next steps for the *predicted* disposition.
We render those steps from templates only -- no free-form generation:
every string below is assembled from the disposition catalog
(:data:`repro.netsim.components.DISPOSITIONS`), so all 52 codes (plus the
``-1`` "no trouble found" closure and the no-locator fallback) render by
construction, and a catalog change shows up here without editing any
template table.

Step order follows the field workflow: where to go, what to repair, what
the fault's dynamics imply for the visit, then the location's standard
isolation checks.
"""

from __future__ import annotations

from repro.netsim.components import DISPOSITIONS, Location

__all__ = [
    "technician_steps",
    "no_locator_steps",
    "disposition_headline",
]

#: Standard isolation checks per major location, in field-testing order
#: (Fig. 2 tests from the customer inward).
_LOCATION_CHECKS: dict[Location, tuple[str, ...]] = {
    Location.HN: (
        "Test at the DEMARC/NID jack first: a clean signal there isolates "
        "the fault to the customer premises.",
        "Walk the inside wiring: filters on every voice device, no "
        "unterminated extensions, modem on the first jack.",
        "If the modem re-syncs clean after the repair, run a speed test "
        "before closing the visit.",
    ),
    Location.F2: (
        "Test at the crossbox and at the DEMARC: a fault between them "
        "confirms the drop segment.",
        "Inspect the drop end to end -- strain, abrasion, water entry at "
        "the protector and splice points.",
        "Re-test sync and noise margin from the DEMARC after the repair.",
    ),
    Location.F1: (
        "Test from the crossbox toward the DSLAM to confirm the fault "
        "sits in the F1 cable section.",
        "Check the pair at both terminal blocks; try a spare pair if the "
        "section tests bad.",
        "Verify the repaired pair's noise margin and attenuation against "
        "the loop-length expectation before leaving.",
    ),
    Location.DS: (
        "Check the DSLAM port status and line-card alarms before any "
        "outside-plant work.",
        "Verify the port's profile/speed configuration matches the "
        "subscribed tier.",
        "If the card tests clean, escalate to the transport group -- the "
        "fault may sit upstream of the DSLAM.",
    ),
}

#: Closure steps when the model ranks "no trouble found" or a dispatched
#: line tests healthy.
_NO_TROUBLE_STEPS: tuple[str, ...] = (
    "Run the full line test once more; an intermittent fault may have "
    "self-cleared since the campaign scored this line.",
    "Review the line's recent error-rate history before closing -- a "
    "clean snapshot does not rule out a recurring fault.",
    "Close as 'no trouble found' only after sync, noise margin and "
    "attainable rate all test within profile.",
)


def disposition_headline(code: int) -> str:
    """One-line disposition label: name, code and major location."""
    if code < 0:
        return "no trouble found (line tests healthy)"
    d = DISPOSITIONS[code]
    return f"{d.name} [{d.code}] at the {d.location.name} segment"


def technician_steps(code: int) -> list[str]:
    """Ordered next steps for a predicted disposition catalog index.

    ``code`` is a catalog index (0..51) or ``-1`` for "no trouble
    found".  Every catalog entry renders: the steps are derived from the
    disposition's own fields, not looked up in a hand-maintained table.
    """
    if code < 0:
        return list(_NO_TROUBLE_STEPS)
    if code >= len(DISPOSITIONS):
        raise IndexError(
            f"disposition index {code} outside the "
            f"{len(DISPOSITIONS)}-entry catalog"
        )
    d = DISPOSITIONS[code]
    steps = [
        f"Dispatch to the {d.location.name} segment: "
        f"{d.location.description}.",
        f"Expected repair: {d.name.lower()}.",
    ]
    if d.hard_failure:
        steps.append(
            "Hard-failure signature: expect a dead or non-syncing line, "
            "not gradual degradation."
        )
    elif d.severity_growth < 0.2:
        steps.append(
            "Slow degradation: compare against the line's week-over-week "
            "trend, not a single snapshot."
        )
    if d.self_clear > 0:
        steps.append(
            "Intermittent fault: confirm it is still reproducible before "
            "closing as no trouble found."
        )
    if d.effect.off_prob >= 0.3:
        steps.append(
            "The modem may test off/unreachable: schedule the visit with "
            "the customer present."
        )
    if d.effect.sets_bt:
        steps.append(
            "Run a bridged-tap measurement: this fault leaves a "
            "detectable tap on the loop."
        )
    if d.effect.sets_crosstalk:
        steps.append(
            "Check pair assignment and binder neighbours: crosstalk "
            "should be measurable on this loop."
        )
    if d.effect.dropout >= 0.3:
        steps.append(
            "Expect resync events in the line history; verify stable "
            "sync for several minutes after the repair."
        )
    steps.extend(_LOCATION_CHECKS[d.location])
    return steps


def no_locator_steps() -> list[str]:
    """Fallback when the active bundle carries no trouble locator."""
    return [
        "No locator is published with the active model: follow the "
        "standard isolation order, customer inward.",
        "Test at the DEMARC first (HN vs outside plant), then the drop "
        "(F2), the F1 section, and finally the DSLAM port.",
        "Record the disposition code on closure -- it trains the next "
        "locator version.",
    ]
