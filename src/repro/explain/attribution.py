"""Exact per-feature attribution of compiled stump-ensemble margins.

A stump ensemble is additive over (feature, kind) groups: the compiled
scorer (:mod:`repro.ml.ensemble_scoring`) folds one bucket-table gather
per group into the margin, in ascending ``(feature, categorical)`` order.
That makes the margin *exactly* decomposable -- each group's gathered
table entry IS that feature's total vote, and re-summing the votes in the
same left-fold order reproduces ``decision_function`` bit-identically
(every addition is the same IEEE-754 double addition the scorer performs).
No sampling, no surrogate model, no approximation tolerance.

Two entry points:

* :func:`attribute_ensemble` -- one :class:`CompiledEnsemble` (the ticket
  predictor's margin);
* :func:`attribute_head` -- one head of a :class:`MultiHeadEnsemble` (a
  locator disposition/location head), whose expanded per-head tables hold
  the exact doubles of that head's own compiled ensemble.

Each :class:`FeatureContribution` also carries the evidence a technician
needs: the raw measured value, how many of the ensemble's thresholds it
crossed (and which one it crossed last), the sign and magnitude of the
vote, and -- after :meth:`MarginAttribution.ranked` -- its rank among the
contributors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ml.ensemble_scoring import (
    CompiledEnsemble,
    MultiHeadEnsemble,
    _FeatureGroup,
    _MergedGroup,
)

__all__ = [
    "FeatureContribution",
    "MarginAttribution",
    "attribute_ensemble",
    "attribute_head",
    "assemble_model_row",
]


@dataclass(frozen=True)
class FeatureContribution:
    """One feature group's exact vote on one row.

    Attributes:
        feature: model-input column index the group reads.
        name: column name when the caller supplied one, else ``None``.
        categorical: stump kind of the group.
        value: the raw measured value fed to the group (NaN if missing).
        missing: whether the value was missing (the vote is then the
            group's accumulated ``s_miss`` total).
        contribution: the exact double the scorer adds for this group.
        thresholds_crossed: continuous -- how many of the group's stump
            thresholds are ``<= value``; categorical -- 1 if the value
            matched a tested category code, else 0.
        n_thresholds: size of the group's threshold/code table.
        threshold: the last threshold crossed (continuous) or the matched
            category code; NaN when none was crossed/matched.
        rank: 1-based rank by |contribution| (0 until ranked).
    """

    feature: int
    name: str | None
    categorical: bool
    value: float
    missing: bool
    contribution: float
    thresholds_crossed: int
    n_thresholds: int
    threshold: float
    rank: int = 0

    @property
    def evidence(self) -> str:
        """One-line human-readable account of why this vote fired."""
        if self.missing:
            return "value missing -- the ensemble's missing-value vote applies"
        if self.categorical:
            if self.thresholds_crossed:
                return f"matched tested category {self.value:g}"
            return (
                f"value {self.value:g} matches none of the "
                f"{self.n_thresholds} tested categories"
            )
        if self.thresholds_crossed == 0:
            return f"below all {self.n_thresholds} learned thresholds"
        return (
            f"crossed {self.thresholds_crossed}/{self.n_thresholds} "
            f"learned thresholds (last: {self.threshold:g})"
        )

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {
            "rank": int(self.rank),
            "feature": int(self.feature),
            "name": self.name,
            "categorical": bool(self.categorical),
            "value": None if self.missing else float(self.value),
            "missing": bool(self.missing),
            "contribution": float(self.contribution),
            "thresholds_crossed": int(self.thresholds_crossed),
            "n_thresholds": int(self.n_thresholds),
            "threshold": (
                None if np.isnan(self.threshold) else float(self.threshold)
            ),
            "evidence": self.evidence,
        }


@dataclass(frozen=True)
class MarginAttribution:
    """A margin decomposed into its exact per-feature votes.

    ``contributions`` is kept in the scorer's fold order (ascending
    ``(feature, categorical)``), so :meth:`reconstructed` -- a plain
    left-fold -- repeats the scorer's addition sequence and equals
    ``margin`` bit-for-bit.
    """

    margin: float
    contributions: tuple[FeatureContribution, ...]

    def reconstructed(self) -> float:
        """Left-fold of the votes; bit-identical to ``margin``."""
        total = 0.0
        for c in self.contributions:
            total += c.contribution
        return total

    def ranked(self) -> list[FeatureContribution]:
        """Votes ordered by |contribution| descending, ranks filled in.

        Ties keep fold order (stable sort), so equal-magnitude votes rank
        deterministically.
        """
        order = sorted(
            range(len(self.contributions)),
            key=lambda i: -abs(self.contributions[i].contribution),
        )
        return [
            replace(self.contributions[i], rank=rank + 1)
            for rank, i in enumerate(order)
        ]

    def top(self, k: int) -> list[FeatureContribution]:
        """The ``k`` largest-magnitude votes, ranks filled in."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return self.ranked()[:k]


def _name_of(names, feature: int) -> str | None:
    # Tolerate absent or short name lists (e.g. synthetic bench bundles
    # never name their columns): the name is cosmetic, never load-bearing.
    if names is None or feature >= len(names):
        return None
    return names[feature]


def _continuous_context(
    keys: np.ndarray, value: float, missing: bool
) -> tuple[int, float]:
    """(thresholds crossed, last threshold crossed) for a continuous group."""
    if missing:
        return 0, float("nan")
    crossed = int(np.searchsorted(keys, value, side="right"))
    last = float(keys[crossed - 1]) if crossed else float("nan")
    return crossed, last


def _categorical_context(
    keys: np.ndarray, value: float, missing: bool
) -> tuple[int, float]:
    """(matched flag, matched code) for a categorical group."""
    if not missing and np.any(keys == value):
        return 1, float(value)
    return 0, float("nan")


def attribute_ensemble(
    compiled: CompiledEnsemble,
    row: np.ndarray,
    names: list[str] | None = None,
) -> MarginAttribution:
    """Decompose one row's margin into exact per-feature votes.

    Args:
        compiled: the compiled ensemble that scored the row.
        row: the (n_features,) model-input row it scored.
        names: optional per-column names (e.g.
            ``TicketPredictor.feature_names``) copied onto the votes.

    Returns:
        A :class:`MarginAttribution` whose vote fold reproduces
        ``compiled.decision_function(row[None])[0]`` bit-identically.
    """
    row = np.asarray(row, dtype=float)
    if row.shape != (compiled.n_features,):
        raise ValueError(
            f"row must have shape ({compiled.n_features},), got {row.shape}"
        )
    margin = 0.0
    contributions: list[FeatureContribution] = []
    for group in compiled.groups:
        value = float(row[group.feature])
        missing = bool(np.isnan(value))
        col = row[group.feature : group.feature + 1]
        vote = float(CompiledEnsemble._group_contribution(group, col)[0])
        margin += vote
        contributions.append(
            _contribution(group, value, missing, vote, names)
        )
    return MarginAttribution(margin=margin, contributions=tuple(contributions))


def _contribution(
    group: _FeatureGroup | _MergedGroup,
    value: float,
    missing: bool,
    vote: float,
    names,
) -> FeatureContribution:
    if group.categorical:
        crossed, threshold = _categorical_context(group.keys, value, missing)
    else:
        crossed, threshold = _continuous_context(group.keys, value, missing)
    return FeatureContribution(
        feature=group.feature,
        name=_name_of(names, group.feature),
        categorical=group.categorical,
        value=value,
        missing=missing,
        contribution=vote,
        thresholds_crossed=crossed,
        n_thresholds=int(group.keys.size),
        threshold=threshold,
    )


def attribute_head(
    multi: MultiHeadEnsemble,
    row: np.ndarray,
    head: int,
    names: list[str] | None = None,
) -> MarginAttribution:
    """Decompose one head's margin of a stacked multi-head ensemble.

    The merged groups store each head's bucket totals *expanded* onto the
    merged key grid -- the exact doubles of that head's own compiled
    ensemble -- and a head's groups appear in the same ascending
    ``(feature, kind)`` order as in its solo compilation, so the vote
    fold equals both ``decision_matrix(row[None])[0, head]`` and the solo
    head's ``decision_function`` bit-identically.

    Args:
        multi: the stacked ensemble.
        row: the (n_features,) row it scored.
        head: the output column to attribute (must have a head).
        names: optional per-column feature names.
    """
    row = np.asarray(row, dtype=float)
    if row.shape != (multi.n_features,):
        raise ValueError(
            f"row must have shape ({multi.n_features},), got {row.shape}"
        )
    matches = np.flatnonzero(multi.head_columns == head)
    if not matches.size:
        raise KeyError(f"no head at output column {head}")
    pos = int(matches[0])
    margin = 0.0
    contributions: list[FeatureContribution] = []
    for group in multi.groups:
        members = np.flatnonzero(group.head_positions == pos)
        if not members.size:
            continue
        value = float(row[group.feature])
        missing = bool(np.isnan(value))
        size = group.keys.size
        # Same slot arithmetic as MultiHeadEnsemble.decision_matrix.
        if missing:
            slot = size + 1
        elif group.categorical:
            idx = min(
                int(np.searchsorted(group.keys, value)), size - 1
            )
            slot = idx if group.keys[idx] == value else size
        else:
            slot = int(np.searchsorted(group.keys, value, side="right"))
        vote = float(group.tables[int(members[0])][slot])
        margin += vote
        contributions.append(
            _contribution(group, value, missing, vote, names)
        )
    return MarginAttribution(margin=margin, contributions=tuple(contributions))


def assemble_model_row(base_row: np.ndarray, recipes) -> np.ndarray:
    """One line's model-input row from its base-feature row.

    Applies the predictor's derived-column recipes exactly like the
    serving path's lazy column provider (base value, base value squared,
    pairwise product), so the assembled doubles -- and therefore the
    attribution margin -- match the served scoring run bit-for-bit.
    """
    base_row = np.asarray(base_row, dtype=float)
    parts = [base_row[np.asarray(recipes.base_indices, dtype=np.intp)]]
    if recipes.quad_indices:
        parts.append(base_row[np.asarray(recipes.quad_indices, dtype=np.intp)] ** 2)
    if recipes.product_pairs:
        parts.append(
            np.array(
                [base_row[i] * base_row[j] for i, j in recipes.product_pairs]
            )
        )
    return np.concatenate(parts)
