"""Per-customer traffic observation (the BRAS byte counts of Section 5.2)."""

from repro.traffic.usage import TrafficConfig, TrafficLog, TrafficModel

__all__ = ["TrafficConfig", "TrafficLog", "TrafficModel"]
