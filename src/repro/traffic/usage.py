"""Daily per-customer byte counts under sampled BRAS servers.

Section 5.2: *"we collect daily aggregated byte information for individual
customers under two BRAS servers.  We consider a customer to be not on
site when no traffic is observed from that customer from one week before
the prediction time until one week after"*.

Only a subset of the population is instrumented (two BRAS servers in the
paper), which is why the paper's not-on-site analysis covers just 108 of
the 12K incorrect predictions.  We reproduce that sampling structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrafficConfig", "TrafficLog", "TrafficModel"]

#: Relative traffic volume by Monday-indexed weekday (evenings/weekends up).
_WEEKDAY_FACTOR = np.array([0.95, 0.93, 0.94, 0.97, 1.05, 1.12, 1.04])


@dataclass(frozen=True)
class TrafficConfig:
    """Traffic-observation parameters.

    Attributes:
        sample_bras: how many BRAS servers export per-customer byte counts.
        bytes_per_usage_day: mean daily bytes of a usage-1.0 customer.
        lognormal_sigma: day-to-day volume variability.
        idle_day_prob: chance an on-site customer generates no traffic on
            a given day anyway (devices off).
    """

    sample_bras: int = 2
    bytes_per_usage_day: float = 2.0e8
    lognormal_sigma: float = 0.8
    idle_day_prob: float = 0.08


@dataclass
class TrafficLog:
    """Daily byte counts for the sampled lines.

    Attributes:
        line_ids: global line indices of the sampled customers, sorted.
        daily_bytes: (n_sampled, n_days) float32 byte counts.
    """

    line_ids: np.ndarray
    daily_bytes: np.ndarray
    _slot: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._slot = {int(line): i for i, line in enumerate(self.line_ids)}

    @property
    def n_days(self) -> int:
        return self.daily_bytes.shape[1]

    def is_sampled(self, line_id: int) -> bool:
        """Whether byte counts exist for this line."""
        return int(line_id) in self._slot

    def bytes_in_window(self, line_id: int, start_day: int, end_day: int) -> float:
        """Total bytes in [start_day, end_day] (clipped to the log range).

        Raises:
            KeyError: if the line is not under a sampled BRAS.
        """
        slot = self._slot[int(line_id)]
        lo = max(0, int(start_day))
        hi = min(self.n_days - 1, int(end_day))
        if hi < lo:
            return 0.0
        return float(np.sum(self.daily_bytes[slot, lo:hi + 1]))

    def not_on_site(self, line_id: int, day: int, window_days: int = 7) -> bool:
        """The paper's not-on-site test around a prediction day.

        True when no traffic is observed from ``window_days`` before
        ``day`` through ``window_days`` after.
        """
        return self.bytes_in_window(line_id, day - window_days, day + window_days) <= 0.0


@dataclass
class TrafficModel:
    """Generates the traffic log week by week during the simulation."""

    line_ids: np.ndarray
    n_days: int
    config: TrafficConfig = field(default_factory=TrafficConfig)
    daily_bytes: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.line_ids = np.sort(np.asarray(self.line_ids, dtype=int))
        self.daily_bytes = np.zeros(
            (len(self.line_ids), self.n_days), dtype=np.float32
        )

    def record_week(
        self,
        week: int,
        usage_intensity: np.ndarray,
        present: np.ndarray,
        throughput_factor: np.ndarray,
        dslam_down_days: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Fill in one week of daily bytes for the sampled lines.

        Args:
            week: week index; days ``7*week .. 7*week+6`` are written.
            usage_intensity: per-sampled-line usage in [0, 1].
            present: per-sampled-line on-site flag for this week.
            throughput_factor: per-sampled-line multiplier combining fault
                cell-loss and line uptime.
            dslam_down_days: (n_sampled, 7) boolean, True on outage days.
            rng: random source.
        """
        n = len(self.line_ids)
        start = week * 7
        if start + 7 > self.n_days:
            raise IndexError(f"week {week} exceeds the traffic log range")
        for shape, name in (
            (usage_intensity.shape, "usage_intensity"),
            (present.shape, "present"),
            (throughput_factor.shape, "throughput_factor"),
        ):
            if shape != (n,):
                raise ValueError(f"{name} must have one entry per sampled line")
        if dslam_down_days.shape != (n, 7):
            raise ValueError("dslam_down_days must be (n_sampled, 7)")

        base = (
            self.config.bytes_per_usage_day
            * usage_intensity[:, None]
            * _WEEKDAY_FACTOR[None, :]
            * np.clip(throughput_factor, 0.0, None)[:, None]
        )
        noise = rng.lognormal(0.0, self.config.lognormal_sigma, size=(n, 7))
        idle = rng.random((n, 7)) < self.config.idle_day_prob
        volume = base * noise
        volume[idle] = 0.0
        volume[~present, :] = 0.0
        volume[dslam_down_days] = 0.0
        self.daily_bytes[:, start:start + 7] = volume.astype(np.float32)

    def finish(self) -> TrafficLog:
        """Freeze the generated counts into a :class:`TrafficLog`."""
        return TrafficLog(line_ids=self.line_ids, daily_bytes=self.daily_bytes)
