"""Performance harness for the vectorised scoring / training fabric.

Measures the three hot paths this repo optimises and writes the numbers
(with their naive-baseline speedups) to ``BENCH_perf.json``:

* **score** -- ``CompiledEnsemble.decision_function`` vs the round-by-round
  naive scorer on a deep synthetic ensemble (default 100K rows x 400
  rounds, the Fig-3 weekly-scoring shape), asserting the margins agree.
* **train** -- ``BStump.fit`` throughput in rows/sec.
* **train_locator** -- the full Section-6 combined-locator fit (52
  disposition heads + 4 location heads + CV-fold refits) unified on one
  shared ``BinnedDataset`` vs per-head exact, asserting the unified fit
  is faster and produces identical ranked disposition lists.
* **selection** -- the batched single-feature sweep on a Fig-4-shaped
  workload (83 candidate features) against two baselines: the
  pre-optimisation reference (a per-column ``BStump`` fit plus the scalar
  tie-break/AP(N) pass per candidate -- the "before" of this PR's
  speedup claim) and the current per-column loop (today's fits with the
  shared vectorised scoring stage).  Asserts all paths select identical
  feature sets.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke

``REPRO_WORKERS`` speeds up the selection sweep; the harness records the
worker count it ran with.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.features.encoding import FeatureSet
from repro.features.selection import single_feature_ap
from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.ensemble_scoring import compile_stumps
from repro.ml.stumps import Stump
from repro.obs.metrics import get_registry
from repro.obs.profile import resource_section, stage_profile
from repro.obs.tracing import set_tracing, span
from repro.parallel import worker_count

#: The observability acceptance bar: disabled-mode instrumentation on the
#: weekly scoring path must cost less than this fraction of its runtime.
MAX_OBS_OVERHEAD = 0.03


def _timed(fn, repeats: int = 1):
    """Best-of-N wall clock and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _synthetic_matrix(rng, n_rows: int, n_features: int, nan_frac: float = 0.3):
    X = rng.normal(size=(n_rows, n_features))
    X[rng.random((n_rows, n_features)) < nan_frac] = np.nan
    return X


def _synthetic_ensemble(rng, n_rounds: int, n_features: int):
    """A fitted-looking stump list without paying for an actual fit."""
    stumps = []
    for _ in range(n_rounds):
        stumps.append(
            Stump(
                feature=int(rng.integers(n_features)),
                threshold=float(rng.normal()),
                s_lo=float(rng.normal(scale=0.1)),
                s_hi=float(rng.normal(scale=0.1)),
                s_miss=float(rng.normal(scale=0.05)),
                categorical=False,
                z=1.0,
            )
        )
    return stumps


def bench_score(rng, n_rows: int, n_rounds: int, n_features: int, repeats: int):
    stumps = _synthetic_ensemble(rng, n_rounds, n_features)
    X = _synthetic_matrix(rng, n_rows, n_features)
    compiled = compile_stumps(stumps, n_features)

    def naive():
        margin = np.zeros(n_rows)
        for stump in stumps:
            margin += stump.predict(X)
        return margin

    compile_time, _ = _timed(lambda: compile_stumps(stumps, n_features))
    naive_time, naive_margin = _timed(naive, repeats)
    compiled_time, compiled_margin = _timed(
        lambda: compiled.decision_function(X), repeats
    )
    np.testing.assert_allclose(compiled_margin, naive_margin, rtol=1e-10, atol=1e-10)
    return {
        "n_rows": n_rows,
        "n_rounds": n_rounds,
        "n_features": n_features,
        "n_used_features": compiled.n_used_features,
        "compile_seconds": compile_time,
        "naive_seconds": naive_time,
        "compiled_seconds": compiled_time,
        "naive_rows_per_sec": n_rows / naive_time,
        "compiled_rows_per_sec": n_rows / compiled_time,
        "speedup": naive_time / compiled_time,
        "margins_match": True,
    }


def bench_train(rng, n_rows: int, n_rounds: int, n_features: int):
    X = _synthetic_matrix(rng, n_rows, n_features)
    y = (np.where(np.isnan(X[:, 0]), 0.0, X[:, 0]) + rng.normal(size=n_rows) > 0)
    config = BStumpConfig(n_rounds=n_rounds, calibrate=False)
    elapsed, model = _timed(
        lambda: BStump(config).fit(X, y.astype(float))
    )
    return {
        "n_rows": n_rows,
        "n_rounds_requested": n_rounds,
        "n_rounds_trained": len(model.learners),
        "n_features": n_features,
        "seconds": elapsed,
        "rows_per_sec": n_rows / elapsed,
        "row_rounds_per_sec": n_rows * len(model.learners) / elapsed,
    }


def bench_train_hist(rng, n_rows: int, n_rounds: int, n_features: int,
                     quick: bool):
    """Guard on the histogram training backend's speed *and* fidelity.

    Fits the same synthetic week with ``backend="exact"`` and
    ``backend="hist"`` and asserts both halves of the tentpole claim:

    * **speed** -- hist must never be slower than exact; the full run
      additionally enforces the >= 3x end-to-end speedup at the paper's
      weekly-retrain shape (100K rows x 400 rounds).
    * **fidelity** -- on distinct-valued data the shared split grid makes
      both backends scan the same candidate thresholds, so the trained
      models must agree stump for stump and their margins must match to
      float-summation noise.
    """
    X = _synthetic_matrix(rng, n_rows, n_features)
    y = (np.where(np.isnan(X[:, 0]), 0.0, X[:, 0])
         + rng.normal(size=n_rows) > 0).astype(float)
    exact_cfg = BStumpConfig(n_rounds=n_rounds, calibrate=False,
                             backend="exact")
    hist_cfg = BStumpConfig(n_rounds=n_rounds, calibrate=False,
                            backend="hist")

    # Warm both code paths (allocator, numpy dispatch) off the clock.
    warm = _synthetic_matrix(rng, 512, 4)
    warm_y = (rng.random(512) > 0.5).astype(float)
    BStump(BStumpConfig(n_rounds=3, calibrate=False)).fit(warm, warm_y)
    BStump(BStumpConfig(n_rounds=3, calibrate=False,
                        backend="hist")).fit(warm, warm_y)

    exact_time, exact_model = _timed(lambda: BStump(exact_cfg).fit(X, y))
    hist_time, hist_model = _timed(lambda: BStump(hist_cfg).fit(X, y))

    structural_match = len(exact_model.learners) == len(hist_model.learners) and all(
        a.stump.feature == b.stump.feature
        and a.stump.threshold == b.stump.threshold
        and a.stump.categorical == b.stump.categorical
        for a, b in zip(exact_model.learners, hist_model.learners)
    )
    exact_margin = exact_model.decision_function(X)
    hist_margin = hist_model.decision_function(X)
    margin_max_diff = float(np.max(np.abs(exact_margin - hist_margin)))
    assert margin_max_diff < 1e-6, (
        f"hist-backend margins diverge from exact by {margin_max_diff:.2e} "
        f"(structural match: {structural_match})"
    )

    speedup = exact_time / hist_time
    min_speedup = 1.0 if quick else 3.0
    assert speedup >= min_speedup, (
        f"hist backend only {speedup:.2f}x vs exact "
        f"({hist_time:.2f}s vs {exact_time:.2f}s); "
        f"required >= {min_speedup:.1f}x at {n_rows} rows x {n_rounds} rounds"
    )
    return {
        "n_rows": n_rows,
        "n_rounds_requested": n_rounds,
        "n_rounds_trained": len(hist_model.learners),
        "n_features": n_features,
        "n_bins": hist_cfg.n_bins,
        "exact_seconds": exact_time,
        "hist_seconds": hist_time,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "hist_rows_per_sec": n_rows / hist_time,
        "exact_rows_per_sec": n_rows / exact_time,
        "margin_max_diff": margin_max_diff,
        "structural_match": structural_match,
        "workers": worker_count(),
    }


def _synthetic_locator_dataset(rng, n_rows: int, n_features: int):
    """A quantised Section-6 dispatch set shaped for backend parity.

    Features take ~49 distinct integer-grid values, so the histogram
    edges (distinct-value midpoints under the bin budget) coincide with
    the uncapped exact backend's candidate grid and every CV-fold subset
    sees the full value set -- the regime in which the two backends scan
    identical thresholds and must train identical heads.  The label
    signal is kept deliberately weak: near-perfect separation makes
    unrelated features tie on the same split partition, and the
    ~1e-16 summation-noise tie-break then differs per backend (see
    ``tests/test_locator_unified.py``).
    """
    from repro.data.joins import LocatorDataset
    from repro.netsim.components import disposition_arrays

    from repro.core.locator import N_DISPOSITIONS

    # Per-feature *uniform* integer grids at staggered sizes: every value
    # carries >= 1/18 of the mass, so each CV-fold subset contains the
    # full value set (the fold-refit half of the parity regime), and no
    # split isolates a near-empty side (the degenerate partitions behind
    # cross-feature Z ties).
    n_values = 6 + 2 * (np.arange(n_features) % 7)
    X = np.floor(rng.random((n_rows, n_features)) * n_values)
    # Every feature is informative for every code at a distinct strength:
    # each boosting round then has a decisive winner instead of a pack of
    # equally useless noise features.
    prior = 1.0 / np.sqrt(np.arange(2, N_DISPOSITIONS + 2, dtype=float))
    prior /= prior.sum()
    weights = rng.normal(size=(n_features, N_DISPOSITIONS))
    logits = (2.0 * X / (n_values - 1.0) - 1.0) @ weights
    gumbel = -np.log(-np.log(rng.random((n_rows, N_DISPOSITIONS))))
    disposition = np.argmax(np.log(prior) + 0.8 * logits + gumbel, axis=1)
    location = disposition_arrays().location[disposition]
    features = FeatureSet(
        matrix=X,
        names=[f"f{i}" for i in range(n_features)],
        groups=["default"] * n_features,
        categorical=np.zeros(n_features, dtype=bool),
    )
    return LocatorDataset(
        features=features,
        disposition=disposition,
        location=location.astype(int),
        line_ids=np.arange(n_rows),
        ticket_days=np.zeros(n_rows, dtype=int),
    )


def bench_train_locator(rng, n_rows: int, n_rounds: int, n_features: int,
                        folds: int, quick: bool):
    """Guard on the unified multi-head locator fit's speed *and* fidelity.

    Trains the full Section-6 combined locator -- 52 disposition heads,
    4 major-location heads, and every CV-fold refit -- twice on the same
    synthetic dispatch set: per-head exact (each of the (folds+1) x 56
    fits re-sorting its own rows, the pre-unification path) and unified
    hist (one shared :class:`BinnedDataset`, fold refits reusing row
    subsets of its codes).  Asserts both halves of the tentpole claim:

    * **speed** -- unified-hist must never be slower than per-head exact;
      the full run enforces the >= 3x end-to-end locator-fit speedup.
    * **fidelity** -- on the quantised dataset both backends scan the
      same candidate grids, so the flat margins must agree to
      float-summation noise and the *ranked disposition lists* -- the
      artefact handed to the technician -- must be identical row for row.
    """
    from repro.core.locator import CombinedLocator, LocatorConfig

    train = _synthetic_locator_dataset(rng, n_rows, n_features)
    eval_X = _synthetic_locator_dataset(
        rng, max(512, n_rows // 4), n_features
    ).features.matrix
    # max_split_points = n+1 keeps the exact candidate grid uncapped so
    # its thresholds coincide with the shared histogram edges.
    exact_cfg = LocatorConfig(n_rounds=n_rounds, cv_folds=folds,
                              backend="exact", max_split_points=n_rows + 1)
    hist_cfg = LocatorConfig(n_rounds=n_rounds, cv_folds=folds,
                             backend="hist", max_split_points=n_rows + 1)

    # Warm both code paths (allocator, numpy dispatch) off the clock.
    warm = _synthetic_locator_dataset(rng, 256, 4)
    CombinedLocator(LocatorConfig(n_rounds=2, cv_folds=2,
                                  backend="exact")).fit(warm)
    CombinedLocator(LocatorConfig(n_rounds=2, cv_folds=2,
                                  backend="hist")).fit(warm)

    exact_time, exact_model = _timed(
        lambda: CombinedLocator(exact_cfg).fit(train)
    )
    hist_time, hist_model = _timed(
        lambda: CombinedLocator(hist_cfg).fit(train)
    )

    margin_max_diff = float(np.max(np.abs(
        exact_model.flat.decision_matrix(eval_X)
        - hist_model.flat.decision_matrix(eval_X)
    )))
    assert margin_max_diff < 1e-6, (
        f"unified-hist flat margins diverge from per-head exact by "
        f"{margin_max_diff:.2e}"
    )
    exact_rank = np.argsort(-exact_model.predict_proba(eval_X), axis=1,
                            kind="stable")
    hist_rank = np.argsort(-hist_model.predict_proba(eval_X), axis=1,
                           kind="stable")
    ranked_lists_identical = bool(np.array_equal(exact_rank, hist_rank))
    assert ranked_lists_identical, (
        "unified-hist locator ranks dispositions differently from "
        f"per-head exact on {np.sum(np.any(exact_rank != hist_rank, axis=1))}"
        f"/{eval_X.shape[0]} held-out rows"
    )

    speedup = exact_time / hist_time
    min_speedup = 1.0 if quick else 3.0
    assert speedup >= min_speedup, (
        f"unified-hist locator fit only {speedup:.2f}x vs per-head exact "
        f"({hist_time:.2f}s vs {exact_time:.2f}s); required >= "
        f"{min_speedup:.1f}x at {n_rows} rows x {n_rounds} rounds "
        f"x {folds} folds"
    )
    return {
        "n_rows": n_rows,
        "n_rounds": n_rounds,
        "n_features": n_features,
        "cv_folds": folds,
        "n_heads_trained": len(hist_model.flat.models_)
        + len(hist_model.location_models_),
        "exact_seconds": exact_time,
        "hist_seconds": hist_time,
        "speedup": speedup,
        "min_speedup": min_speedup,
        "margin_max_diff": margin_max_diff,
        "ranked_lists_identical": ranked_lists_identical,
        "workers": worker_count(),
    }


def _reference_single_feature_ap(train, y_train, test, y_test, n, n_rounds):
    """The pre-optimisation selection sweep, kept as the bench baseline.

    One ``BStump`` fit and one scalar tie-break + AP(N) pass per
    candidate column -- the shape of the loop before this repo vectorised
    the scoring stage and moved the fits into the sorted-domain sweep.
    (The per-column fits themselves already benefit from the current
    ``StumpSearch``, so the measured baseline *understates* the speedup
    over the original code.)
    """
    from repro.features.selection import (
        _break_ties_by_value,
        _eligible_columns,
        _fit_single_column_margin,
    )
    from repro.ml.metrics import top_n_average_precision

    config = BStumpConfig(n_rounds=n_rounds, calibrate=False)
    scores = np.zeros(train.n_features)
    for j in np.flatnonzero(_eligible_columns(train.matrix)):
        margin = _fit_single_column_margin(train, y_train, test, int(j), config)
        if not train.categorical[j]:
            margin = _break_ties_by_value(margin, test.matrix[:, j])
        scores[int(j)] = top_n_average_precision(y_test, n, margin)
    return scores


def bench_selection(rng, n_rows: int, n_features: int, n_rounds: int,
                    repeats: int):
    """Fig-4-shaped sweep: score every candidate with a tiny predictor."""
    X = _synthetic_matrix(rng, n_rows, n_features)
    y = (np.nansum(X[:, :8], axis=1) + rng.normal(scale=2.0, size=n_rows) > 1.5)
    y = y.astype(float)
    names = [f"f{i}" for i in range(n_features)]
    groups = ["default"] * n_features
    cat = np.zeros(n_features, dtype=bool)
    half = n_rows // 2
    train = FeatureSet(X[:half], names, groups, cat)
    test = FeatureSet(X[half:], names, groups, cat)
    capacity = max(10, n_rows // 8)

    baseline_time, baseline_scores = _timed(
        lambda: _reference_single_feature_ap(
            train, y[:half], test, y[half:], capacity, n_rounds
        ),
        repeats,
    )
    loop_time, loop_scores = _timed(
        lambda: single_feature_ap(
            train, y[:half], test, y[half:], n=capacity,
            n_rounds=n_rounds, batched=False,
        ),
        repeats,
    )
    batched_time, batched_scores = _timed(
        lambda: single_feature_ap(
            train, y[:half], test, y[half:], n=capacity,
            n_rounds=n_rounds, batched=True,
        ),
        repeats,
    )

    def top20(scores):
        return set(np.argsort(-scores, kind="stable")[:20].tolist())

    return {
        "n_rows": n_rows,
        "n_features": n_features,
        "n_rounds": n_rounds,
        "baseline_seconds": baseline_time,
        "loop_seconds": loop_time,
        "batched_seconds": batched_time,
        "speedup": baseline_time / batched_time,
        "speedup_vs_loop": loop_time / batched_time,
        "scores_identical": bool(np.array_equal(batched_scores, loop_scores)),
        "scores_match_reference": bool(
            np.array_equal(batched_scores, baseline_scores)
        ),
        "selected_sets_identical": (
            top20(batched_scores) == top20(loop_scores) == top20(baseline_scores)
        ),
        "workers": worker_count(),
    }


def bench_obs_overhead(rng, n_rows: int, n_rounds: int, n_features: int,
                       repeats: int):
    """Guard: disabled-mode instrumentation must be ~free on the hot path.

    Wraps the compiled-ensemble scoring of one synthetic week exactly the
    way the serving path wraps it -- a (disabled) span, one histogram
    observation, and a :func:`stage_profile` resource block -- and
    measures the wrap cost *in situ*: every call is timestamped just
    outside and just inside the instrumentation, and the overhead is the
    paired difference of the two windows on the same call.

    A differential design (separate plain vs wrapped runs compared by
    median) cannot enforce a 3% budget here: the heap state the wrappers
    leave behind shifts where numpy places its temporaries, which swings
    the kernel itself by +/-2-3% between processes -- a benchmark
    artifact larger than the budget.  The paired per-call difference is
    immune to kernel-time variance while still charging the wrappers
    their full post-workload price (syscalls and allocations right after
    a numpy kernel cost several times their warm price).  Two statistics
    are asserted under ``MAX_OBS_OVERHEAD``: the median paired
    difference (the typical call) and a top-2%-trimmed mean (amortising
    the periodic metric-flush calls without letting multi-ms scheduler
    preemptions fail the guard).
    """
    import statistics

    del repeats  # sample count is derived from the call duration instead
    stumps = _synthetic_ensemble(rng, n_rounds, n_features)
    X = _synthetic_matrix(rng, n_rows, n_features)
    compiled = compile_stumps(stumps, n_features)
    hist = get_registry().histogram(
        "bench_obs_score_seconds", "Overhead-guard scoring timer"
    )

    inner: list[float] = []
    outer: list[float] = []

    def instrumented():
        t_outer = time.perf_counter()
        with span("bench.score_week", rows=n_rows), hist.time(), \
                stage_profile("bench.score_week"):
            t_inner = time.perf_counter()
            compiled.decision_function(X)
            inner.append(time.perf_counter() - t_inner)
        outer.append(time.perf_counter() - t_outer)

    once, _ = _timed(lambda: compiled.decision_function(X), 3)
    n_samples = max(101, min(1001, int(2.0 / max(once, 1e-9))))
    set_tracing(False)
    try:
        instrumented()  # warm the path (and force the first-call flush)
        inner.clear(), outer.clear()
        for _ in range(n_samples):
            instrumented()
    finally:
        set_tracing(None)

    kernel_time = statistics.median(inner)
    diffs = sorted(o - i for o, i in zip(outer, inner))
    median_cost = statistics.median(diffs)
    kept = diffs[: max(1, int(len(diffs) * 0.98))]
    amortized_cost = sum(kept) / len(kept)
    overhead = max(median_cost, amortized_cost) / kernel_time
    assert overhead < MAX_OBS_OVERHEAD, (
        f"disabled-mode instrumentation overhead {overhead:.1%} exceeds "
        f"the {MAX_OBS_OVERHEAD:.0%} budget "
        f"({max(median_cost, amortized_cost) * 1e6:.1f}us per call on a "
        f"{kernel_time * 1e3:.2f}ms kernel)"
    )
    return {
        "n_rows": n_rows,
        "n_rounds": n_rounds,
        "n_samples": n_samples,
        "plain_seconds": kernel_time,
        "instrumented_seconds": kernel_time + median_cost,
        "median_cost_seconds": median_cost,
        "amortized_cost_seconds": amortized_cost,
        "overhead_fraction": overhead,
        "budget_fraction": MAX_OBS_OVERHEAD,
        "within_budget": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000,
                        help="rows for the scoring benchmark")
    parser.add_argument("--rounds", type=int, default=400,
                        help="ensemble depth for the scoring benchmark")
    parser.add_argument("--features", type=int, default=40,
                        help="feature count for scoring/training benchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a CI smoke run")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_perf.json")
    args = parser.parse_args()

    if args.quick:
        score_rows, score_rounds, features = 5_000, 60, 20
        train_rows, train_rounds = 2_000, 40
        hist_rows, hist_rounds = 5_000, 60
        loc_rows, loc_rounds, loc_features, loc_folds = 1_200, 8, 12, 2
        sel_rows, sel_features, sel_rounds = 1_200, 30, 3
        repeats = 1
    else:
        score_rows, score_rounds, features = args.rows, args.rounds, args.features
        train_rows, train_rounds = 20_000, 150
        hist_rows, hist_rounds = 100_000, 400
        loc_rows, loc_rounds, loc_features, loc_folds = 12_000, 40, 24, 3
        sel_rows, sel_features, sel_rounds = 12_000, 83, 4
        repeats = 3

    rng = np.random.default_rng(20100801)
    report = {
        "quick": args.quick,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "workers_env": os.environ.get("REPRO_WORKERS", ""),
        "score": bench_score(rng, score_rows, score_rounds, features, repeats),
        "train": bench_train(rng, train_rows, train_rounds, features),
        "train_hist": bench_train_hist(rng, hist_rows, hist_rounds, features,
                                       args.quick),
        "train_locator": bench_train_locator(rng, loc_rows, loc_rounds,
                                             loc_features, loc_folds,
                                             args.quick),
        "selection": bench_selection(rng, sel_rows, sel_features, sel_rounds,
                                     repeats),
        "obs_overhead": bench_obs_overhead(rng, score_rows, score_rounds,
                                           features, repeats),
    }
    report["resources"] = resource_section()
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    score, sel = report["score"], report["selection"]
    print(f"score:     {score['speedup']:.1f}x compiled vs naive "
          f"({score['compiled_rows_per_sec']:.0f} rows/s vs "
          f"{score['naive_rows_per_sec']:.0f} rows/s)")
    print(f"train:     {report['train']['rows_per_sec']:.0f} rows/s "
          f"({report['train']['n_rounds_trained']} rounds)")
    hist = report["train_hist"]
    print(f"train_hist: {hist['speedup']:.1f}x hist vs exact "
          f"({hist['hist_rows_per_sec']:.0f} rows/s vs "
          f"{hist['exact_rows_per_sec']:.0f} rows/s), "
          f"margin max diff {hist['margin_max_diff']:.1e}, "
          f"structural match: {hist['structural_match']}")
    loc = report["train_locator"]
    print(f"train_locator: {loc['speedup']:.1f}x unified-hist vs per-head "
          f"exact ({loc['hist_seconds']:.2f}s vs {loc['exact_seconds']:.2f}s "
          f"for {loc['n_heads_trained']} heads x {loc['cv_folds']}+1 fits), "
          f"margin max diff {loc['margin_max_diff']:.1e}, "
          f"ranked lists identical: {loc['ranked_lists_identical']}")
    print(f"selection: {sel['speedup']:.1f}x batched vs reference "
          f"({sel['speedup_vs_loop']:.1f}x vs current loop), "
          f"scores identical: {sel['scores_identical']}, "
          f"selected sets identical: {sel['selected_sets_identical']}")
    obs = report["obs_overhead"]
    print(f"obs:       {obs['overhead_fraction']:+.2%} disabled-mode "
          f"instrumentation overhead (budget {obs['budget_fraction']:.0%})")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
