"""E12 (extension) -- the closed loop's end goal: fewer customer tickets.

The paper's abstract: proactive resolution *"has the effect of both
reducing the number of customer care calls and improving customer
satisfaction"*.  The offline evaluation cannot show this (predictions are
scored against the tickets that still happened); the simulator can.  Run
the identical world twice -- reactive-only versus with the NEVERMIND loop
live after a warm-up -- and compare the customer-edge ticket stream and
the expected churn over the live weeks.
"""

import numpy as np
import pytest

from repro.core.pipeline import NevermindPipeline, PipelineConfig
from repro.core.predictor import PredictorConfig
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import DslSimulator, SimulationConfig
from repro.tickets.churn import estimate_churn
from repro.tickets.ticketing import TicketCategory, TicketSource

N_LINES = 5000
N_WEEKS = 26
WARMUP = 15
CAPACITY = 150


def weekly_customer_edge_tickets(result, first_week, last_week):
    counts = np.zeros(last_week - first_week + 1, dtype=int)
    for ticket in result.ticket_log.tickets:
        if ticket.category is not TicketCategory.CUSTOMER_EDGE:
            continue
        if ticket.source is not TicketSource.CUSTOMER:
            continue
        if first_week <= ticket.week <= last_week:
            counts[ticket.week - first_week] += 1
    return counts


@pytest.fixture(scope="module")
def twin_worlds():
    simulation = SimulationConfig(
        n_weeks=N_WEEKS,
        population=PopulationConfig(n_lines=N_LINES, seed=404),
        fault_rate_scale=4.0,
        seed=404,
    )
    reactive = DslSimulator(simulation).run()
    pipeline = NevermindPipeline(
        simulation,
        PipelineConfig(
            warmup_weeks=WARMUP,
            predictor=PredictorConfig(
                capacity=CAPACITY, train_rounds=150, selection_rounds=4,
            ),
        ),
    )
    pipeline.run()
    return reactive, pipeline


def test_pipeline_reduces_customer_tickets(twin_worlds, benchmark, write_result):
    reactive, pipeline = benchmark.pedantic(
        lambda: twin_worlds, rounds=1, iterations=1
    )
    proactive = pipeline.simulator.result()
    live_first, live_last = WARMUP, N_WEEKS - 1
    reactive_counts = weekly_customer_edge_tickets(reactive, live_first, live_last)
    proactive_counts = weekly_customer_edge_tickets(proactive, live_first, live_last)
    summary = pipeline.summary()

    churn_reactive = estimate_churn(reactive)
    churn_proactive = estimate_churn(proactive)

    rows = [f"live weeks {live_first}-{live_last}"]
    rows.append("week        : " + "  ".join(
        f"{w:>4}" for w in range(live_first, live_last + 1)))
    rows.append("reactive    : " + "  ".join(f"{c:>4}" for c in reactive_counts))
    rows.append("proactive   : " + "  ".join(f"{c:>4}" for c in proactive_counts))
    rows.append(
        f"total customer tickets: reactive {reactive_counts.sum()}, "
        f"proactive {proactive_counts.sum()} "
        f"({1 - proactive_counts.sum() / max(1, reactive_counts.sum()):.0%} fewer)"
    )
    rows.append(
        f"proactive dispatch precision: {summary['precision']:.2f} "
        f"({summary['real_problems']} real problems, {summary['fixed']} fixed)"
    )
    rows.append(
        f"expected churners: reactive {churn_reactive.expected_churners:.1f}, "
        f"proactive {churn_proactive.expected_churners:.1f}"
    )
    write_result("pipeline_tickets_avoided", "\n".join(rows))

    # The loop must actually find and fix problems...
    assert summary["real_problems"] > 0
    assert summary["fixed"] > 0
    # ...and the customer-edge ticket stream must visibly shrink.
    assert proactive_counts.sum() < reactive_counts.sum()
    reduction = 1 - proactive_counts.sum() / reactive_counts.sum()
    assert reduction > 0.05
    # The motivating business metric moves the right way too.
    assert churn_proactive.expected_churners <= churn_reactive.expected_churners
