"""A1 -- ablation: design choices under label noise and missingness.

The paper argues for a *linear* model (boosted stumps) because unreported
problems are mislabelled negatives and "sophisticated non-linear models
overfit easily".  Two design choices of this reproduction get ablated on a
controlled synthetic task shaped like the ticket problem (rare positives,
hidden-positive label noise, missing records):

1. label-noise robustness: the ranking quality of BStump degrades
   gracefully as more positives are hidden at training time;
2. missing-value policy: scoring the missing block (our default) beats
   Boostexter-style abstention when missingness is informative and the
   classes are imbalanced.
"""

import numpy as np
import pytest

from repro.ml.boostexter import BStump, BStumpConfig
from repro.ml.metrics import top_n_average_precision


def make_ticket_like(rng, n=20_000, hide=0.0):
    """Rare positives, informative missingness, optional hidden positives."""
    latent = rng.random(n) < 0.05
    X = rng.normal(size=(n, 10))
    X[:, 0] += 2.0 * latent
    X[:, 1] += 1.2 * latent
    # Dead modems (a positive signature) produce missing records.
    dead = latent & (rng.random(n) < 0.5)
    X[dead, :5] = np.nan
    X[rng.random((n, 10)) < 0.03] = np.nan
    y = latent.astype(float)
    observed = y.copy()
    observed[(rng.random(n) < hide) & latent] = 0.0
    return X, y, observed


@pytest.fixture(scope="module")
def noise_sweep(write_result):
    rng = np.random.default_rng(7)
    X_test, y_test, _ = make_ticket_like(rng)
    rows = []
    scores = {}
    for hide in (0.0, 0.2, 0.4, 0.6):
        X, _, observed = make_ticket_like(rng, hide=hide)
        model = BStump(BStumpConfig(n_rounds=80)).fit(X, observed)
        ap = top_n_average_precision(
            y_test, 400, model.decision_function(X_test)
        )
        scores[hide] = ap
        rows.append(f"hidden positives {hide:.0%}: AP(400) vs truth = {ap:.3f}")
    write_result("ablation_label_noise", "\n".join(rows))
    return scores


def test_label_noise_graceful_degradation(noise_sweep, benchmark):
    scores = benchmark.pedantic(lambda: noise_sweep, rounds=1, iterations=1)
    # Even with 60% of positives hidden, the ranking keeps most of its
    # power -- the linear-model robustness the paper relies on.
    assert scores[0.6] > 0.5 * scores[0.0]
    assert scores[0.0] > 0.3


def make_missing_record_task(rng, n=20_000):
    """The exact regime that motivated the scored-missing default: rare
    positives, *weak* per-feature signal (so every stump block stays
    minority-positive and all real margins are negative), and a sizeable
    pool of fully-missing records (modem off during the weekly test) whose
    positive rate is only mildly elevated.  Under abstention those missing
    records score exactly 0 -- above every real margin -- and flood the
    top of the ranking at their ~10% precision."""
    latent = rng.random(n) < 0.05
    X = rng.normal(size=(n, 10))
    X[:, 0] += 1.2 * latent
    X[:, 1] += 0.7 * latent
    # Modem-off probability: 12% baseline, 25% for faulty lines.
    off = rng.random(n) < (0.12 + 0.13 * latent)
    X[off, :] = np.nan
    return X, latent.astype(float)


def test_missing_policy_ablation(benchmark, write_result):
    rng = np.random.default_rng(13)
    X, y = make_missing_record_task(rng)
    X_test, y_test = make_missing_record_task(rng)

    def run():
        results = {}
        for policy in ("score", "abstain"):
            model = BStump(
                BStumpConfig(n_rounds=80, missing_policy=policy)
            ).fit(X, y)
            results[policy] = top_n_average_precision(
                y_test, 400, model.decision_function(X_test)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "ablation_missing_policy",
        "\n".join(f"missing_policy={k}: AP(400) = {v:.3f}"
                  for k, v in results.items()),
    )
    # Abstention emits margin 0 for every fully-missing record; with the
    # rest of the population scored negative, the whole modem-off pool
    # (10% precision) floats to the very top and wrecks the ranking.
    # Scoring the missing block avoids that.
    assert results["score"] > results["abstain"] + 0.05
