"""Benchmark harness for the plant-level triage subsystem (``repro.fleet``).

Measures the three things this PR claims and writes them to
``BENCH_triage.json``:

* **aggregation** -- ``find_clusters`` throughput (lines/sec) on a large
  synthetic plant: a full anomaly-pool grouping + binomial concentration
  test + level disambiguation per call, best-of-N wall clock.
* **scenario** -- end-to-end quality on the ``correlated_faults``
  scenario: upstream recall (share of truly group-degraded anomalous
  lines that land in an upstream cluster -- the >= 0.9 acceptance bar),
  one group dispatch per upstream cluster, and precision-at-capacity of
  the suppression+backfill plan vs the per-line baseline at the same N.
  The harness asserts the triage precision is *strictly* higher.
* **table5_feed** -- the correlated scenario's derived outage schedule
  (DSLAM group faults escalated via ``OutageSchedule.from_group_faults``)
  feeding the Section-5.2 regression: ``explain_incorrect_by_outage``
  coefficients/P-values per horizon, confirming correlated plant events
  keep explaining incorrect predictions.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_triage.py            # full
    PYTHONPATH=src python benchmarks/bench_triage.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro import (
    PredictorConfig,
    TicketPredictor,
    build_population,
    evaluate_plan,
    evaluate_predictions,
    explain_incorrect_by_outage,
    find_clusters,
    paper_style_split,
    plan_dispatches,
    scenario,
)
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import SATURDAY_OFFSET, DslSimulator
from repro.obs.profile import resource_section


def _timed(fn, repeats: int = 1):
    """Best-of-N wall clock and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


# ---------------------------------------------------------------------------
# aggregation throughput
# ---------------------------------------------------------------------------

def bench_aggregation(n_lines: int, repeats: int) -> dict:
    """``find_clusters`` wall clock on a synthetic plant with planted hotspots.

    Scores are unit Gaussians; two binders and one DSLAM get a +3 shift so
    the concentration test has real structure to find (the degenerate
    no-cluster case short-circuits and would overstate throughput).
    """
    population = build_population(PopulationConfig(n_lines=n_lines, seed=7))
    topology = population.topology
    rng = np.random.default_rng(7)
    scores = rng.standard_normal(n_lines)
    for binder_id in (1, topology.n_binders // 2):
        scores[topology.lines_of_binder(binder_id)] += 3.0
    scores[topology.lines_of_dslam(topology.n_dslams - 1)] += 3.0
    capacity = max(20, n_lines // 50)

    elapsed, triage = _timed(
        lambda: find_clusters(scores, topology, capacity), repeats
    )
    upstream = triage.upstream_clusters
    print(
        f"aggregation: {n_lines} lines in {elapsed * 1e3:.1f} ms "
        f"({n_lines / elapsed:,.0f} lines/s), "
        f"{len(upstream)} upstream clusters found"
    )
    assert upstream, "planted hotspots must produce upstream clusters"
    return {
        "n_lines": n_lines,
        "capacity": capacity,
        "pool_size": int(triage.pool_line_ids.size),
        "seconds": elapsed,
        "lines_per_s": n_lines / elapsed,
        "clusters": len(triage.clusters),
        "upstream_clusters": len(upstream),
    }


# ---------------------------------------------------------------------------
# correlated scenario: recall + precision-at-capacity
# ---------------------------------------------------------------------------

def _eval_week(result, n_weeks: int) -> int:
    """Late week with the most shared-fault-affected lines (ties: latest)."""
    counts = {
        week: int(
            result.group_faults.affected_lines(
                week * 7 + SATURDAY_OFFSET
            ).sum()
        )
        for week in range(max(0, n_weeks - 6), n_weeks)
    }
    return max(counts, key=lambda week: (counts[week], week))


def bench_scenario(n_lines: int, n_weeks: int, rounds: int, seed: int) -> dict:
    """Baseline vs suppression+backfill precision on ``correlated_faults``."""
    config = scenario("correlated_faults", n_lines, n_weeks, seed=seed)
    result = DslSimulator(config).run()
    assert result.group_faults is not None

    split = paper_style_split(
        n_weeks, history=max(2, n_weeks - 11), train=3, selection=2, test=0
    )
    capacity = max(20, n_lines // 50)
    predictor = TicketPredictor(
        PredictorConfig(capacity=capacity, train_rounds=rounds)
    ).fit(result, split)

    week = _eval_week(result, n_weeks)
    day = week * 7 + SATURDAY_OFFSET
    topology = result.population.topology
    scores = predictor.score_week(result, week)

    elapsed, triage = _timed(
        lambda: find_clusters(scores, topology, capacity)
    )
    plan = plan_dispatches(scores, capacity, triage, week=week)

    fault = result.fault_active_on(day)
    active_groups = {
        (event.level, event.group_id)
        for event in result.group_faults.schedule.active_on(day)
    }
    scored = evaluate_plan(plan, fault, active_groups)

    # Upstream recall: of the anomalous-pool lines truly degraded by an
    # active group fault, how many landed inside an upstream cluster?
    degraded = result.group_faults.affected_lines(day)
    pool_degraded = triage.pool_line_ids[degraded[triage.pool_line_ids]]
    in_cluster = triage.upstream_line_mask()
    recall = (
        float(in_cluster[pool_degraded].mean()) if pool_degraded.size else 1.0
    )

    upstream = triage.upstream_clusters
    print(
        f"scenario: week {week}, {len(upstream)} upstream clusters, "
        f"{scored['group_dispatches']} group dispatches, "
        f"upstream recall {recall:.0%}"
    )
    print(
        f"  precision@{capacity}: baseline {scored['baseline_precision']:.3f}"
        f" -> triage {scored['triage_precision']:.3f} "
        f"(suppressed {scored['suppressed']}, backfilled {scored['backfilled']})"
    )
    assert upstream, "correlated scenario must yield upstream clusters"
    assert scored["group_dispatches"] == len(upstream), (
        "exactly one group dispatch per upstream cluster"
    )
    assert recall >= 0.9, f"upstream recall {recall:.2f} below 0.9 bar"
    assert scored["triage_precision"] > scored["baseline_precision"], (
        "suppression+backfill must strictly improve precision-at-capacity"
    )
    return {
        "n_lines": n_lines,
        "n_weeks": n_weeks,
        "train_rounds": rounds,
        "seed": seed,
        "week": week,
        "capacity": capacity,
        "find_clusters_seconds": elapsed,
        "upstream_clusters": len(upstream),
        "clusters": [cluster.to_dict() for cluster in triage.clusters],
        "upstream_recall": recall,
        **scored,
    }, result, predictor, week


def _table5_week(result) -> int:
    """Latest Saturday strictly before the earliest derived outage.

    Table-5's window is forward-looking (``day < start <= day + T*7``):
    the prediction has to be made while the shared degradation is still
    live so the escalated maintenance outage lands inside the horizon.
    """
    first_start = min(event.start_day for event in result.outages.events)
    return max(0, (first_start - 1 - SATURDAY_OFFSET) // 7)


def bench_table5_feed(result, predictor) -> dict:
    """Table-5 regression over the *derived* (bridged) outage schedule."""
    assert result.outages.events, "bridge must derive >=1 DSLAM outage"
    week = _table5_week(result)
    ranking = predictor.rank_week(result, week)
    outcome = evaluate_predictions(result, ranking, week)
    capacity = predictor.config.capacity
    rows = explain_incorrect_by_outage(result, outcome, capacity)
    print(f"table5 feed (derived outages from DSLAM group faults, week {week}):")
    for row in rows:
        print(
            f"  T={row.horizon_weeks}w: incorrect frac "
            f"{row.incorrect_fraction:.3f}, coef {row.coefficient:+.3f}, "
            f"p {row.p_value:.3g}"
        )
    return {
        "week": week,
        "n_outage_events": len(result.outages.events),
        "outage_precursor_weeks": result.outages.config.precursor_weeks,
        "horizons": [
            {
                "horizon_weeks": row.horizon_weeks,
                "incorrect_fraction": row.incorrect_fraction,
                "coefficient": row.coefficient,
                "p_value": row.p_value,
            }
            for row in rows
        ],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_triage.json at "
                             "the repo root)")
    args = parser.parse_args()

    if args.quick:
        agg_lines, agg_repeats = 20_000, 3
        lines, weeks, rounds = 2500, 20, 40
    else:
        agg_lines, agg_repeats = 120_000, 3
        lines, weeks, rounds = 5000, 22, 60

    report = {
        "quick": args.quick,
        "numpy": np.__version__,
        "python": platform.python_version(),
    }
    report["aggregation"] = bench_aggregation(agg_lines, agg_repeats)
    scenario_report, result, predictor, _week = bench_scenario(
        lines, weeks, rounds, args.seed
    )
    report["scenario"] = scenario_report
    report["table5_feed"] = bench_table5_feed(result, predictor)
    report["resources"] = resource_section()

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_triage.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
