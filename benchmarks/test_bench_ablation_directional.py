"""A3 -- ablation: directional fault physics and the trouble locator.

DESIGN.md calls out the downstream/upstream coupling asymmetry (a fault
near the customer hurts upstream more; one at the DSLAM hurts downstream)
as the main physical clue the locator can read from line tests alone.
This ablation simulates twin worlds with the asymmetry on and off and
compares the combined locator's improvement over the experience baseline:
without the directional signal, most of the learned edge should evaporate
(only magnitude/counter signatures remain).
"""

import numpy as np
import pytest

from repro.core.locator import (
    CombinedLocator,
    ExperienceModel,
    LocatorConfig,
    ranks_of_truth,
)
from repro.data.joins import build_locator_dataset
from repro.netsim.population import PopulationConfig
from repro.netsim.simulator import DslSimulator, SimulationConfig

N_LINES = 3000
N_WEEKS = 22


def locator_gain(directional: bool) -> tuple[float, int]:
    """(mean rank improvement of combined over basic, test size)."""
    config = SimulationConfig(
        n_weeks=N_WEEKS,
        population=PopulationConfig(n_lines=N_LINES, seed=77),
        fault_rate_scale=5.0,
        directional_faults=directional,
        seed=77,
    )
    world = DslSimulator(config).run()
    horizon = N_WEEKS * 7
    cut = int(horizon * 0.6)
    train = build_locator_dataset(world, 30, cut)
    test = build_locator_dataset(world, cut + 1, horizon)
    locator_config = LocatorConfig(n_rounds=60)
    X = test.features.matrix
    basic = ranks_of_truth(
        ExperienceModel(locator_config).fit(train).predict_proba(X),
        test.disposition,
    )
    combined = ranks_of_truth(
        CombinedLocator(locator_config).fit(train).predict_proba(X),
        test.disposition,
    )
    return float(np.mean(basic - combined)), test.n_examples


@pytest.fixture(scope="module")
def ablation(write_result):
    gain_on, n_on = locator_gain(directional=True)
    gain_off, n_off = locator_gain(directional=False)
    write_result(
        "ablation_directional_physics",
        "\n".join([
            f"directional faults ON : mean rank gain {gain_on:+.2f} "
            f"({n_on} dispatches)",
            f"directional faults OFF: mean rank gain {gain_off:+.2f} "
            f"({n_off} dispatches)",
        ]),
    )
    return gain_on, gain_off


def test_directional_physics_feeds_the_locator(ablation, benchmark):
    gain_on, gain_off = benchmark.pedantic(lambda: ablation, rounds=1,
                                           iterations=1)
    # The locator still learns something from magnitudes/counters alone,
    # but the directional asymmetry carries a visible share of its edge.
    assert gain_on > 0
    assert gain_on > gain_off
