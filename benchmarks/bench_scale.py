"""Paper-scale weekly cycle: the full loop at a million lines on one box.

The paper's deployment covers millions of DSL lines; every prior
benchmark in this repo stops at a few hundred thousand because the
monolithic :class:`DslSimulator` materialises the whole measurement
cube up front.  This harness drives the *streaming* cycle end to end --

    generate (chunked netsim) -> append (incremental store shards)
    -> encode (chunked, out-of-core) -> score (sharded multi-worker)
    -> dispatch (capacity-bounded top-N)

-- and writes the numbers to ``BENCH_scale.json``:

* **generate_append** -- :func:`repro.netsim.stream_weeks` feeding
  :meth:`LineWeekStore.append_week_chunks`, timed together because the
  generator is lazy: lines/sec and line-weeks/sec over the whole
  horizon.  Peak memory is one chunk's week matrices, never the cube.
* **encode** -- streaming :meth:`StoredWorld.iter_encode_week` of the
  latest week through the Table-3 encoder with the store forced
  out-of-core: chunks are encoded and released, never assembled.
* **score** / **score_single_worker** -- the sharded scoring engine over
  the out-of-core world, multi-worker vs one worker, same synthetic
  ensemble as ``bench_serve`` so the numbers are comparable.
* **dispatch** -- cutting the top-N list from the scored week.
* **parity** -- the invariants that make the streaming numbers *honest*,
  re-proven at a small scale on every run: chunked generation is
  bit-identical to the monolithic (single-chunk) run, and chunk-wise
  appends produce byte-identical shard files to whole-week appends.
* **guards** -- the CI-enforced floors: peak RSS bounded by chunk size
  (sub-linear in stored line-weeks; a dense run holds the whole
  ``n_lines x n_weeks x 25`` float32 cube), and multi-worker scoring
  at least ``min_speedup`` x the single-worker pass.  The speedup floor
  is only enforced when the box has >= 2 CPUs -- the report records
  ``cpu_count`` so a single-core result is legible, not fabricated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_scale.py            # 1M lines
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # 100K (CI)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_serve import _synthetic_bundle
from repro.features.encoding import EncoderConfig, LineFeatureEncoder
from repro.netsim import STREAM_BLOCK_LINES, SimulationConfig, stream_weeks
from repro.netsim.groupfaults import GroupFaultConfig
from repro.netsim.population import PopulationConfig
from repro.obs.profile import peak_rss_kb, resource_section
from repro.parallel import worker_count
from repro.serve import LineWeekStore, ScoringEngine, StoredWorld

#: Multiple of the per-chunk working set allowed by the RSS guard, on
#: top of the fixed interpreter + per-line population overheads.
RSS_CHUNK_MULTIPLE = 4
#: Fixed allowance: interpreter, numpy, imports, allocator slack.
RSS_FIXED_MB = 320
#: Per-line allowance for the O(n) arrays a streaming run legitimately
#: holds (population/topology/conditions, scores, ticket vectors).  A
#: dense 8-week run needs 800 bytes/line for the measurement cube alone.
RSS_PER_LINE_BYTES = 400


def _scale_config(n_lines: int, n_weeks: int) -> SimulationConfig:
    """The benchmarked plant: group faults on, so shared-plant events
    span chunk boundaries and the restriction path is actually paid."""
    return SimulationConfig(
        n_weeks=n_weeks,
        population=PopulationConfig(n_lines=n_lines, seed=11),
        fault_rate_scale=2.0,
        group_faults=GroupFaultConfig(
            n_dslam_events=4, n_binder_events=8, event_window=(0.0, 0.7),
            seed=23,
        ),
        seed=20100808,
    )


def bench_cycle(n_lines: int, n_weeks: int, chunk_lines: int, n_rounds: int,
                shard_size: int, workers: int | None, score_passes: int):
    """One full streaming weekly cycle; returns the report section."""
    config = _scale_config(n_lines, n_weeks)
    with tempfile.TemporaryDirectory() as tmp:
        store = LineWeekStore.create(
            Path(tmp) / "store", n_lines=n_lines, population=config.population
        )

        gen_start = time.perf_counter()
        appended = store.append_week_chunks(
            stream_weeks(config, chunk_lines=chunk_lines)
        )
        gen_seconds = time.perf_counter() - gen_start
        assert appended == list(range(n_weeks)), appended
        store.verify()

        # The paper-scale path: never materialise the dense cube.
        world = StoredWorld(
            LineWeekStore.open(store.root), out_of_core=True
        )
        encoder = LineFeatureEncoder(EncoderConfig())
        target = store.latest_week

        # Stream the encode: each chunk's base features are produced and
        # dropped, as the deployment loop does (scoring re-encodes per
        # shard) -- holding the full encoded matrix would cost more than
        # the raw week it came from (~83 float64 columns vs 25 float32).
        encode_start = time.perf_counter()
        encoded_rows = 0
        for shard, piece in world.iter_encode_week(
            target, encoder, chunk_lines=chunk_lines
        ):
            encoded_rows += piece.matrix.shape[0]
        encode_seconds = time.perf_counter() - encode_start
        assert encoded_rows == n_lines

        rng = np.random.default_rng(20100808)
        bundle = _synthetic_bundle(
            rng, encoder, n_rounds, capacity=max(50, n_lines // 100)
        )
        bundle.predictor.model.compiled()  # compile off the clock

        def timed_score(n_workers):
            engine = ScoringEngine(
                bundle, world, shard_size=shard_size, workers=n_workers
            )
            best, scored = float("inf"), None
            for _ in range(score_passes):
                engine._score_cache.clear()
                t0 = time.perf_counter()
                scored = engine.score_week(target)
                best = min(best, time.perf_counter() - t0)
            return engine, scored, best

        engine, scored, score_seconds = timed_score(workers)
        single_seconds = score_seconds
        single_scores = scored.scores
        if worker_count(workers) > 1:
            _, single, single_seconds = timed_score(1)
            single_scores = single.scores

        dispatch_start = time.perf_counter()
        dispatch = engine.dispatch(target)
        dispatch_seconds = time.perf_counter() - dispatch_start

        line_weeks = n_lines * n_weeks
        return {
            "n_lines": n_lines,
            "n_weeks": n_weeks,
            "chunk_lines": chunk_lines,
            "stream_block_lines": STREAM_BLOCK_LINES,
            "n_rounds": n_rounds,
            "shard_size": shard_size,
            "n_shards": scored.n_shards,
            "workers": worker_count(workers),
            "out_of_core": world.out_of_core_active(),
            "generate_append_seconds": gen_seconds,
            "generate_lines_per_sec": n_lines / gen_seconds,
            "generate_line_weeks_per_sec": line_weeks / gen_seconds,
            "encode_seconds": encode_seconds,
            "encode_lines_per_sec": n_lines / encode_seconds,
            "score_seconds": score_seconds,
            "score_lines_per_sec": n_lines / score_seconds,
            "score_single_worker_seconds": single_seconds,
            "worker_speedup": single_seconds / score_seconds,
            "workers_match_single": bool(
                np.array_equal(scored.scores, single_scores)
            ),
            "dispatch_seconds": dispatch_seconds,
            "dispatch_size": len(dispatch),
            "cycle_seconds": (
                gen_seconds + encode_seconds + score_seconds + dispatch_seconds
            ),
        }


def bench_parity(n_weeks: int = 2):
    """Small-scale proof that chunking changes nothing, run every time."""
    n_lines = 2 * STREAM_BLOCK_LINES + 700  # straddles two block boundaries
    config = _scale_config(n_lines, n_weeks)

    def collect(chunk_lines):
        feats = [[] for _ in range(n_weeks)]
        lasts = [[] for _ in range(n_weeks)]
        for blk in stream_weeks(config, chunk_lines=chunk_lines):
            feats[blk.week].append(blk.features)
            lasts[blk.week].append(blk.last_ticket_day)
        return (
            [np.concatenate(f) for f in feats],
            [np.concatenate(t) for t in lasts],
        )

    mono_f, mono_t = collect(None)
    chunk_f, chunk_t = collect(STREAM_BLOCK_LINES)
    generation_identical = all(
        np.array_equal(chunk_f[w], mono_f[w], equal_nan=True)
        and np.array_equal(chunk_t[w], mono_t[w])
        for w in range(n_weeks)
    )

    with tempfile.TemporaryDirectory() as tmp:
        whole = LineWeekStore.create(
            Path(tmp) / "whole", n_lines, config.population
        )
        for w in range(n_weeks):
            whole.append_week(w, w * 7 + 5, mono_f[w], mono_t[w])
        chunked = LineWeekStore.create(
            Path(tmp) / "chunked", n_lines, config.population
        )
        chunked.append_week_chunks(
            stream_weeks(config, chunk_lines=STREAM_BLOCK_LINES)
        )
        store_identical = all(
            (whole.root / name).read_bytes() == (chunked.root / name).read_bytes()
            for w in range(n_weeks)
            for name in (f"week_{w:05d}.npy", f"tickets_{w:05d}.npy")
        )
    return {
        "n_lines": n_lines,
        "n_weeks": n_weeks,
        "generation_chunked_equals_monolithic": generation_identical,
        "store_chunked_equals_whole_week": store_identical,
    }


def rss_guard(n_lines: int, n_weeks: int, chunk_lines: int) -> dict:
    """Peak-RSS budget: fixed + O(n) per-line + a few chunks -- never
    the O(n x weeks) cube a dense run would hold."""
    chunk_bytes = chunk_lines * n_weeks * 25 * 4
    budget_bytes = (
        RSS_FIXED_MB * 2**20
        + RSS_PER_LINE_BYTES * n_lines
        + RSS_CHUNK_MULTIPLE * chunk_bytes
    )
    dense_cube_bytes = n_lines * n_weeks * 25 * 4
    peak_bytes = peak_rss_kb() * 1024
    return {
        "peak_rss_mb": peak_bytes / 2**20,
        "budget_mb": budget_bytes / 2**20,
        "dense_cube_mb": dense_cube_bytes / 2**20,
        "chunk_working_set_mb": chunk_bytes / 2**20,
        "rss_within_budget": bool(peak_bytes <= budget_bytes),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lines", type=int, default=1_000_000,
                        help="plant size (lines)")
    parser.add_argument("--weeks", type=int, default=8,
                        help="simulated horizon")
    parser.add_argument("--chunk-lines", type=int, default=65_536,
                        help="streaming chunk size (rounds up to blocks)")
    parser.add_argument("--rounds", type=int, default=200,
                        help="synthetic ensemble depth")
    parser.add_argument("--shard-size", type=int, default=32_768,
                        help="lines per scoring shard")
    parser.add_argument("--workers", type=int, default=None,
                        help="scoring fan-out (default: REPRO_WORKERS, or "
                             "min(4, cpu) when unset)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="multi-worker floor vs single worker "
                             "(enforced only with >= 2 CPUs)")
    parser.add_argument("--quick", action="store_true",
                        help="100K-line smoke for CI")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_scale.json")
    args = parser.parse_args()

    if args.quick:
        n_lines, n_weeks, chunk, rounds, shard, passes = (
            100_000, 4, 32_768, 60, 8_192, 3
        )
    else:
        n_lines, n_weeks, chunk, rounds, shard, passes = (
            args.lines, args.weeks, args.chunk_lines, args.rounds,
            args.shard_size, 2
        )

    workers = args.workers
    if workers is None and not os.environ.get("REPRO_WORKERS", "").strip():
        workers = min(4, os.cpu_count() or 1)
    cpu_count = os.cpu_count() or 1

    report = {
        "quick": args.quick,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "workers_env": os.environ.get("REPRO_WORKERS", ""),
        "parity": bench_parity(),
        "scale": bench_cycle(
            n_lines, n_weeks, chunk, rounds, shard, workers, passes
        ),
    }
    scale = report["scale"]
    enforce_speedup = cpu_count >= 2 and scale["workers"] > 1
    report["guards"] = {
        **rss_guard(n_lines, n_weeks, chunk),
        "min_speedup": args.min_speedup,
        "speedup_enforced": enforce_speedup,
        "speedup_ok": (
            bool(scale["worker_speedup"] >= args.min_speedup)
            if enforce_speedup else None
        ),
    }
    report["resources"] = resource_section()
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    guards = report["guards"]
    parity = report["parity"]
    print(f"cycle:    {n_lines} lines x {n_weeks} weeks in "
          f"{scale['cycle_seconds']:.1f}s "
          f"(chunk {scale['chunk_lines']}, {scale['workers']} workers, "
          f"out-of-core={scale['out_of_core']})")
    print(f"generate: {scale['generate_lines_per_sec']:.0f} lines/s "
          f"({scale['generate_line_weeks_per_sec']:.0f} line-weeks/s, "
          f"{scale['generate_append_seconds']:.1f}s incl. store append)")
    print(f"encode:   {scale['encode_lines_per_sec']:.0f} lines/s "
          f"({scale['encode_seconds']:.2f}s, chunked)")
    print(f"score:    {scale['score_lines_per_sec']:.0f} lines/s "
          f"({scale['score_seconds']:.2f}s over {scale['n_shards']} shards); "
          f"single worker {scale['score_single_worker_seconds']:.2f}s "
          f"= {scale['worker_speedup']:.2f}x, "
          f"scores identical: {scale['workers_match_single']}")
    print(f"dispatch: top-{scale['dispatch_size']} in "
          f"{scale['dispatch_seconds'] * 1e3:.1f} ms")
    print(f"parity:   generation {parity['generation_chunked_equals_monolithic']}, "
          f"store bytes {parity['store_chunked_equals_whole_week']}")
    print(f"rss:      peak {guards['peak_rss_mb']:.0f} MB vs budget "
          f"{guards['budget_mb']:.0f} MB "
          f"(dense cube alone: {guards['dense_cube_mb']:.0f} MB) -> "
          f"{'ok' if guards['rss_within_budget'] else 'OVER'}")
    if guards["speedup_enforced"]:
        print(f"speedup:  {scale['worker_speedup']:.2f}x vs floor "
              f"{guards['min_speedup']:.1f}x -> "
              f"{'ok' if guards['speedup_ok'] else 'BELOW FLOOR'}")
    else:
        print(f"speedup:  not enforced ({cpu_count} cpu, "
              f"{scale['workers']} workers)")
    print(f"wrote {args.output}")

    failures = []
    if not parity["generation_chunked_equals_monolithic"]:
        failures.append("chunked generation diverged from monolithic")
    if not parity["store_chunked_equals_whole_week"]:
        failures.append("chunked store shards diverged from whole-week")
    if not scale["workers_match_single"]:
        failures.append("multi-worker scores diverged from single worker")
    if not guards["rss_within_budget"]:
        failures.append("peak RSS exceeded the chunk-bounded budget")
    if guards["speedup_enforced"] and not guards["speedup_ok"]:
        failures.append("multi-worker speedup below floor")
    if failures:
        raise SystemExit("bench_scale FAILED: " + "; ".join(failures))


if __name__ == "__main__":
    main()
