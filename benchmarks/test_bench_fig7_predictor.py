"""E5 -- Fig 7: ticket-predictor accuracy, with and without derived features.

The paper's headline evaluation: with history+customer features the top-20K
accuracy is 37.8 %; adding the derived quadratic and product features lifts
it to 40 % -- roughly 2 true predictions per 3 incorrect ones, against a
population base rate well under 1 %.  We assert the shape: a large lift
over the base rate at capacity, monotone-ish decay as the cut grows, and
derived features not hurting (usually helping).
"""

import numpy as np
import pytest

from repro.core.analysis import accuracy_curve, evaluate_predictions
from repro.core.predictor import PredictorConfig, TicketPredictor

from benchmarks.conftest import CAPACITY


@pytest.fixture(scope="module")
def no_derived_outcomes(world, split):
    config = PredictorConfig(
        capacity=CAPACITY, train_rounds=300, selection_rounds=4,
        include_derived=False,
    )
    predictor = TicketPredictor(config).fit(world, split)
    return [
        evaluate_predictions(world, predictor.rank_week(world, week), week)
        for week in split.test_weeks
    ]


def test_fig7_accuracy_curves(world, split, test_outcomes, no_derived_outcomes,
                              benchmark, write_result):
    grid = np.array([CAPACITY // 4, CAPACITY // 2, CAPACITY,
                     CAPACITY * 2, CAPACITY * 5])
    full_curve, plain_curve = benchmark.pedantic(
        lambda: (accuracy_curve(test_outcomes, grid),
                 accuracy_curve(no_derived_outcomes, grid)),
        rounds=1, iterations=1,
    )
    base_rate = float(np.mean([o.hits.mean() for o in test_outcomes]))
    rows = ["top-x:              " + "  ".join(f"{int(n):>6}" for n in grid)]
    rows.append("all features:       " + "  ".join(f"{v:6.3f}" for v in full_curve))
    rows.append("history+customer:   " + "  ".join(f"{v:6.3f}" for v in plain_curve))
    rows.append(f"base ticket rate:   {base_rate:.4f}")
    ratio = full_curve[2] / base_rate if base_rate else float("inf")
    rows.append(f"lift at capacity:   {ratio:.1f}x")
    write_result("fig7_predictor_accuracy", "\n".join(rows))

    # Headline shape: strong concentration of future tickets in the top-N.
    # (The paper's ~50x lift sits over a <1% base rate; our plant is
    # densified 3x so the suite runs at laptop scale, compressing the
    # achievable lift.)
    assert full_curve[2] > 3.2 * base_rate
    # The paper's operating point is ~2 true per 3 false (0.4); we accept
    # a generous band around it given the simulated substrate.
    assert full_curve[2] > 0.2
    # Derived features help (or at worst wash) -- Fig 7's two curves.
    assert full_curve[2] >= plain_curve[2] - 0.03
    # Accuracy decays as the cut grows past capacity.
    assert full_curve[2] >= full_curve[4] - 1e-9


def test_fig7_weekly_yield(test_outcomes, benchmark, write_result):
    """Section 5: 'more than 8,000 future tickets per week' at 40 % of the
    top 20K.  At our scale: accuracy@capacity x capacity true predictions
    per week."""
    def weekly_yield():
        return [int(np.sum(o.hits[:CAPACITY])) for o in test_outcomes]

    yields = benchmark.pedantic(weekly_yield, rounds=1, iterations=1)
    write_result(
        "fig7_weekly_yield",
        "\n".join(f"week +{i}: {y} true predictions in the top {CAPACITY}"
                  for i, y in enumerate(yields)),
    )
    assert all(y > CAPACITY // 10 for y in yields)
