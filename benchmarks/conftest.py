"""Shared benchmark world.

All experiment benchmarks (one per paper table/figure, see DESIGN.md) run
against a single simulated world and, where applicable, a single trained
ticket predictor.  The world is larger than the test-suite fixture --
12,000 lines over 30 weeks with an outage-prone plant -- so the shapes the
paper reports have room to emerge; it is built once per benchmark session.

Scale mapping: the paper ranks millions of lines and submits the top 20K
(~0.5-2 % of the studied population) to ATDS.  We keep the ratio, not the
absolute count: ``CAPACITY`` is 2 % of the simulated lines.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import (
    DslSimulator,
    PopulationConfig,
    PredictorConfig,
    SimulationConfig,
    TicketPredictor,
    evaluate_predictions,
    paper_style_split,
)
from repro.tickets.customers import CustomerConfig
from repro.tickets.outage import OutageConfig

N_LINES = int(os.environ.get("NEVERMIND_BENCH_LINES", 12_000))
N_WEEKS = 30
CAPACITY = max(50, N_LINES // 50)  # 2% of lines ~ the paper's top-20K role
RESULTS_DIR = Path(__file__).parent / "results"


def _write_result(name: str, text: str) -> None:
    """Persist a reproduced table/series next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n--- {name} ---\n{text}")


@pytest.fixture(scope="session")
def write_result():
    """Fixture handing benches the result-persisting helper."""
    return _write_result


@pytest.fixture(scope="session")
def world():
    """The benchmark plant: 30 simulated weeks with outages and traffic."""
    config = SimulationConfig(
        n_weeks=N_WEEKS,
        population=PopulationConfig(n_lines=N_LINES, seed=2010),
        # Failing shared equipment degrades for a month before it dies, so
        # per-DSLAM prediction clusters carry outage signal at every
        # Table-5 horizon T = 1..4 weeks.
        outages=OutageConfig(weekly_rate=0.025, propensity_shape=0.25,
                             precursor_weeks=2, precursor_noise_db=7.0,
                             precursor_cv_rate=14.0, seed=2010),
        # A visible seasonal-absence population feeds the Section-5.2
        # not-on-site analysis.
        customers=CustomerConfig(away_start_prob=0.02, long_away_prob=0.25),
        fault_rate_scale=3.0,
        seed=2010,
    )
    return DslSimulator(config).run()


@pytest.fixture(scope="session")
def split(world):
    """Paper-style temporal layout over the benchmark horizon."""
    return paper_style_split(
        world.config.n_weeks, history=10, train=4, selection=3, test=3
    )


@pytest.fixture(scope="session")
def predictor(world, split):
    """The full ticket predictor (with derived features), trained once."""
    config = PredictorConfig(
        capacity=CAPACITY, train_rounds=300, selection_rounds=4,
        product_pool=16,
    )
    return TicketPredictor(config).fit(world, split)


@pytest.fixture(scope="session")
def test_outcomes(world, split, predictor):
    """Ranked predictions of the trained model on every test week."""
    return [
        evaluate_predictions(world, predictor.rank_week(world, week), week)
        for week in split.test_weeks
    ]
