"""E3 -- Fig 4: histograms of single-feature top-N average precision.

Section 4.3 scores each candidate feature by the AP(20K) of a
single-feature predictor, then keeps features above a threshold read off
the histogram: the history/customer and quadratic histograms are strongly
bimodal (threshold 0.2 at paper scale), and product features must clear a
higher bar (0.3) because a useful product should beat both of its factors.

Our absolute AP axis differs from the paper's (different population and
capacity ratio), so the shape claims are asserted relative to the best
observed AP: a separated high-scoring mode exists, and most candidates sit
in the low mode.
"""

import numpy as np


def histogram_text(scores: np.ndarray, n_bins: int = 12) -> str:
    top = max(float(scores.max()), 1e-9)
    edges = np.linspace(0.0, top, n_bins + 1)
    counts, _ = np.histogram(scores, bins=edges)
    rows = []
    for i, count in enumerate(counts):
        bar = "#" * min(60, count)
        rows.append(f"[{edges[i]:.3f}, {edges[i + 1]:.3f}) {count:>5} {bar}")
    return "\n".join(rows)


def gather(predictor):
    return {
        "history_customer": predictor.selection_scores_["base"],
        "quadratic": predictor.selection_scores_["quadratic"],
        "product": predictor.selection_scores_["product"],
    }


def test_fig4_ap_histograms(predictor, benchmark, write_result):
    families = benchmark.pedantic(
        lambda: gather(predictor), rounds=1, iterations=1
    )
    report = []
    for name, scores in families.items():
        report.append(f"== Fig 4 [{name}]: {len(scores)} candidates ==")
        report.append(histogram_text(np.asarray(scores)))
        report.append("")
    write_result("fig4_ap_histograms", "\n".join(report))

    base = np.asarray(families["history_customer"])
    quad = np.asarray(families["quadratic"])
    prod = np.asarray(families["product"])

    assert len(base) == 83
    assert len(quad) == 83
    assert len(prod) > 50

    # Bimodal separation in the history/customer histogram: a clear gap
    # between the informative mode and the bulk (Fig 4a).
    best = base.max()
    high_mode = base[base > 0.5 * best]
    low_mode = base[base <= 0.5 * best]
    assert len(high_mode) >= 5, "an informative feature mode must exist"
    assert len(low_mode) >= len(base) // 2, "most features sit in the low mode"

    # Fig 4c: some products genuinely beat strong singles (the paper's
    # rationale for including them at a stricter threshold).
    assert prod.max() > 0.6 * best
