"""A2 -- ablation: the label horizon T (Section 4.1's T = 4 weeks).

The paper argues a short T only captures problems that cut service
outright, while T = 4 weeks also catches slow-burn problems (intermittent
connections, slow speed) and customers who were away when the problem
started.  This bench sweeps T over the same trained ranking and reports
how many of the top-N predictions are vindicated within each horizon: the
yield must grow substantially from 1 to 4 weeks, which is exactly the
paper's justification for evaluating at a month.
"""

import numpy as np
import pytest

from repro.core.analysis import evaluate_predictions

from benchmarks.conftest import CAPACITY


@pytest.fixture(scope="module")
def horizon_sweep(world, split, predictor, write_result):
    week = split.test_weeks[0]
    ranked = predictor.rank_week(world, week)
    accuracies = {}
    for t in (1, 2, 3, 4):
        outcome = evaluate_predictions(world, ranked, week, horizon_weeks=t)
        accuracies[t] = outcome.accuracy_at(CAPACITY)
    write_result(
        "ablation_label_window",
        "\n".join(
            f"T = {t} week(s): accuracy@{CAPACITY} = {acc:.3f}"
            for t, acc in accuracies.items()
        ),
    )
    return accuracies


def test_longer_window_vindicates_more_predictions(horizon_sweep, benchmark):
    accuracies = benchmark.pedantic(
        lambda: horizon_sweep, rounds=1, iterations=1
    )
    values = [accuracies[t] for t in (1, 2, 3, 4)]
    # Nested label windows: accuracy is monotone in T by construction,
    # but the *magnitude* of the gain is the finding -- a meaningful share
    # of predicted problems takes more than a week to be reported.
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[3] > 1.3 * values[0]
