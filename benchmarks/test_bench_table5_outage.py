"""E7 -- Table 5: incorrect predictions explained by outages and the IVR.

Two reproduced rows per horizon T = 1..4 weeks:

* the share of the top-N *incorrect* predictions sitting on a DSLAM with
  at least one outage within T weeks of the prediction (the paper finds
  12.7 % at 1 week growing to 31.5 % at 4 weeks -- calls during known
  outages are answered by the IVR and never become tickets);
* the logistic regression ``outage(d, t, T) ~ #predictions(d)``: a
  consistently positive coefficient with P-value below 5 %, i.e. the
  per-DSLAM prediction count is an outage early-warning signal.
"""

import numpy as np

from repro.core.analysis import explain_incorrect_by_outage
from repro.ml.logistic import fit_logistic_regression

from benchmarks.conftest import CAPACITY


def test_table5_outage_explanation(world, test_outcomes, benchmark,
                                   write_result):
    rows_per_week = benchmark.pedantic(
        lambda: [
            explain_incorrect_by_outage(world, outcome, CAPACITY)
            for outcome in test_outcomes
        ],
        rounds=1, iterations=1,
    )
    # Average the fraction row over test weeks; pool the regression below.
    horizons = [1, 2, 3, 4]
    fractions = {
        t: float(np.mean([
            rows[i].incorrect_fraction
            for rows in rows_per_week
            for i in range(4)
            if rows[i].horizon_weeks == t
        ]))
        for t in horizons
    }

    # Pooled Table-5 regression over all test weeks for statistical power.
    dslam_of = world.population.dslam_idx
    n_dslams = world.population.topology.n_dslams
    counts_all, outage_all = [], []
    for outcome in test_outcomes:
        top = outcome.ranked_lines[:CAPACITY]
        counts_all.append(
            np.bincount(dslam_of[top], minlength=n_dslams).astype(float)
        )
    pooled = {}
    for t in horizons:
        outcome_rows = []
        for outcome, counts in zip(test_outcomes, counts_all):
            indicator = world.outages.outage_indicator(outcome.day, t * 7)
            outcome_rows.append((counts, indicator.astype(float)))
        X = np.concatenate([c for c, _ in outcome_rows])[:, None]
        y = np.concatenate([o for _, o in outcome_rows])
        if 0 < y.sum() < len(y):
            fit = fit_logistic_regression(X, y)
            pooled[t] = (float(fit.coefficients[0]), float(fit.p_values[0]))
        else:
            pooled[t] = (0.0, 1.0)

    rows = [f"{'T (weeks)':>24}: " + "  ".join(f"{t:>8}" for t in horizons)]
    rows.append(
        f"{'% incorrect w/ outage':>24}: "
        + "  ".join(f"{fractions[t]:8.1%}" for t in horizons)
    )
    rows.append(
        f"{'regression coefficient':>24}: "
        + "  ".join(f"{pooled[t][0]:8.4f}" for t in horizons)
    )
    rows.append(
        f"{'P-value':>24}: " + "  ".join(f"{pooled[t][1]:8.4f}" for t in horizons)
    )
    write_result("table5_outage", "\n".join(rows))

    # Row 1 shape: the explained share grows with the horizon.
    values = [fractions[t] for t in horizons]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] > values[0]
    assert values[-1] > 0.02, "outages must explain a visible share"

    # Rows 2-3 shape: positive coefficients at every horizon, clearly
    # significant at the short horizons where the precursor is strongest.
    # (The paper reports p < 0.005 at every T; with ~100x fewer
    # DSLAM-weeks, our long-horizon p-values are noisier.)
    for t in horizons:
        assert pooled[t][0] > 0, pooled
    assert pooled[1][1] < 0.05, pooled
    assert min(p for _, p in pooled.values()) < 0.01, pooled


def test_ivr_absorbs_real_calls(world, benchmark):
    """The mechanism behind Table 5: calls during outages reach the IVR and
    never become tickets."""
    calls = benchmark.pedantic(
        lambda: world.ticket_log.ivr_calls, rounds=1, iterations=1
    )
    assert len(calls) > 0
    for call in calls[:50]:
        assert world.outages.dslams_down_on(call.day)[call.dslam_id]
