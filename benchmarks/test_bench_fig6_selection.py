"""E4 -- Fig 6: feature-selection method comparison.

The paper selects the top 50 history/customer features with five methods
(top-N AP, AUC, average precision, PCA, gain ratio -- Table 4), trains a
classifier per method, and plots accuracy against the number of top
predictions kept.  The headline shape: the proposed top-N AP method wins
below the capacity N, while the globally-oriented AUC selection catches up
once far more predictions than the capacity are kept.

Scale note: the paper picks 50 out of its history/customer candidates at
AT&T data volume, where AP estimates are precise enough for the tail of
the ranking to matter.  Our candidate pool is 83 features, so keeping 50
would make every supervised selector pick a near-identical set; we keep
the *selection pressure* comparable instead (TOP_K = 12 of 83) and assert
the relative shape, averaging over the test weeks.
"""

import numpy as np
import pytest

from repro.core.analysis import evaluate_predictions
from repro.data.joins import build_ticket_dataset
from repro.features.selection import (
    select_features_auc,
    select_features_average_precision,
    select_features_gain_ratio,
    select_features_pca,
    select_features_top_n_ap,
)
from repro.ml.boostexter import BStump, BStumpConfig

from benchmarks.conftest import CAPACITY

TOP_K = 12
TRAIN_ROUNDS = 200


@pytest.fixture(scope="module")
def selection_curves(world, split, write_result):
    train = build_ticket_dataset(world, split.train_weeks)
    selection = build_ticket_dataset(world, split.selection_weeks)

    methods = {
        "top_n_ap": lambda: select_features_top_n_ap(
            train.features, train.y, selection.features, selection.y,
            n=CAPACITY, top_k=TOP_K,
        ),
        "auc": lambda: select_features_auc(train.features, train.y, TOP_K),
        "average_precision": lambda: select_features_average_precision(
            train.features, train.y, TOP_K
        ),
        "pca": lambda: select_features_pca(train.features, train.y, TOP_K),
        "gain_ratio": lambda: select_features_gain_ratio(
            train.features, train.y, TOP_K
        ),
    }

    grid = np.array(
        [CAPACITY // 4, CAPACITY // 2, CAPACITY, CAPACITY * 3, CAPACITY * 10]
    )
    curves = {}
    for name, select in methods.items():
        chosen = select().selected
        model = BStump(BStumpConfig(n_rounds=TRAIN_ROUNDS)).fit(
            train.features.matrix[:, chosen],
            train.y,
            categorical=train.features.categorical[chosen],
        )
        accs = []
        for week in split.test_weeks:
            fs = build_ticket_dataset(world, [week]).features
            scores = model.decision_function(fs.matrix[:, chosen])
            ranked = np.argsort(-scores, kind="stable")
            outcome = evaluate_predictions(world, ranked, week)
            accs.append([outcome.accuracy_at(int(n)) for n in grid])
        curves[name] = np.mean(accs, axis=0)

    header = "top-x:      " + "  ".join(f"{int(n):>6}" for n in grid)
    rows = [header]
    for name, curve in curves.items():
        rows.append(
            f"{name:>12}: " + "  ".join(f"{v:6.3f}" for v in curve)
        )
    write_result("fig6_selection_methods", "\n".join(rows))
    return grid, curves


def test_fig6_selection_comparison(selection_curves, benchmark):
    grid, curves = benchmark.pedantic(
        lambda: selection_curves, rounds=1, iterations=1
    )
    # "Below capacity" summary: mean accuracy over the cuts at and under N.
    head = {name: float(np.mean(curve[:3])) for name, curve in curves.items()}
    at_capacity = {name: curve[2] for name, curve in curves.items()}
    at_tail = {name: curve[-1] for name, curve in curves.items()}

    # Below/at capacity, the paper's top-N AP selection is (near-)best:
    # it never trails the best baseline materially, and it beats the
    # unsupervised PCA pick.  (The decisive Fig-6 separation needs the
    # paper's data volume; at simulator scale the supervised selectors
    # overlap within a few points -- see EXPERIMENTS.md.)
    others_head = max(v for k, v in head.items() if k != "top_n_ap")
    assert head["top_n_ap"] >= others_head - 0.035, head
    assert head["top_n_ap"] > head["pca"] - 0.01, head

    # The advantage shrinks (or flips, the paper's crossover) at large x.
    others_tail = max(v for k, v in at_tail.items() if k != "top_n_ap")
    gap_head = head["top_n_ap"] - others_head
    gap_tail = at_tail["top_n_ap"] - others_tail
    assert gap_tail < gap_head + 0.02

    # Everything converges to the base rate at the far tail.
    spread_tail = max(at_tail.values()) - min(at_tail.values())
    assert spread_tail < 0.05, at_tail


def test_fig6_supervised_beat_random_everywhere(selection_curves, world, split,
                                                benchmark):
    grid, curves = benchmark.pedantic(
        lambda: selection_curves, rounds=1, iterations=1
    )
    base_rate = build_ticket_dataset(world, split.test_weeks).positive_rate()
    for name in ("top_n_ap", "auc", "average_precision", "gain_ratio"):
        assert curves[name][2] > 2 * base_rate, (name, curves[name], base_rate)
