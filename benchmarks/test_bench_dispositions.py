"""E1 -- Table 1 / Fig 2: disposition mix across the four major locations.

The paper characterises customer-edge problems from one month of tickets:
every major location (HN, F2, F1, DS) contributes many distinct
dispositions and none of them dominates its location.  This bench rebuilds
that table from the simulated dispatch notes.
"""

import numpy as np

from repro.netsim.components import DISPOSITIONS, Location


def disposition_table(world):
    counts = world.dispatcher.disposition_counts()
    total = counts.sum()
    lines = [f"{'location':>4} {'share':>7}  top dispositions (share of location)"]
    location_shares = {}
    for location in Location:
        codes = [i for i, d in enumerate(DISPOSITIONS) if d.location == location]
        loc_counts = counts[codes]
        loc_total = loc_counts.sum()
        location_shares[location.name] = loc_total / total
        order = np.argsort(-loc_counts)[:3]
        tops = ", ".join(
            f"{DISPOSITIONS[codes[j]].code} ({loc_counts[j] / max(1, loc_total):.0%})"
            for j in order
        )
        lines.append(
            f"{location.name:>4} {loc_total / total:>7.1%}  {tops}"
        )
    return counts, location_shares, "\n".join(lines)


def test_disposition_mix(world, benchmark, write_result):
    counts, location_shares, table = benchmark.pedantic(
        lambda: disposition_table(world), rounds=1, iterations=1
    )
    write_result("table1_dispositions", table)

    total = counts.sum()
    assert total > 500, "need a substantial dispatch history"
    # Every major location is represented (Fig 2).
    for share in location_shares.values():
        assert share > 0.05
    # Section 2.2: no dominant disposition inside a major location.
    for location in Location:
        codes = [i for i, d in enumerate(DISPOSITIONS) if d.location == location]
        loc_counts = counts[codes]
        if loc_counts.sum() > 0:
            assert loc_counts.max() / loc_counts.sum() < 0.6
    # Section 6.3: the 52 catalog dispositions carry the bulk of problems,
    # and the common ones recur enough to train per-disposition models.
    common = np.sum(counts >= 20)
    assert common >= 20


def test_home_network_is_largest_bucket(world, benchmark):
    """HN holds the most disposition variety and a large share of problems
    (Table 1 lists the most rows there; modems and inside wiring fail a
    lot)."""
    location_counts = benchmark.pedantic(
        world.dispatcher.location_counts, rounds=1, iterations=1
    )
    hn_share = location_counts[0] / location_counts.sum()
    assert hn_share > 0.25
