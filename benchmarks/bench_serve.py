"""Performance harness for the serving subsystem.

Measures the store -> encode -> shard -> compiled-scorer -> dispatch
path at deployment-like scale and writes the numbers to
``BENCH_serve.json``:

* **snapshot** -- line-week store append throughput (line-weeks/sec);
* **cold_score** -- the first full Saturday scoring run from a freshly
  opened store: mmap first-touch page faults + per-shard Table-3 encode
  + compiled scoring + calibration, fanned across ``repro.parallel``
  workers;
* **score** -- the same full run repeated best-of-N (the repo's
  ``bench_perf`` timing idiom) with the score cache cleared each pass,
  so every pass re-reads the store, re-encodes, and re-scores; this
  steady-state number is the headline ``lines_per_sec``, matching the
  deployment loop where weekly appends keep the store pages resident;
* **dispatch** -- cutting the capacity-bounded top-N list.
* **locate** -- Section-6 ranked-disposition lookups through the stacked
  multi-head locator scorer: one-at-a-time ``locate`` calls vs a single
  ``locate_batch`` pass over the same lines, with rankings asserted
  identical.
* **routes** -- per-route request latency (p50/p95/p99) through the real
  :meth:`ScoringService.dispatch_request` routing layer (socket-free),
  plus the SLO monitor's burn-rate verdict over the driven traffic.
* **cache** -- repeat ``/score`` lookups through the shared
  version-keyed :class:`~repro.serve.cache.ScoreCache` vs the uncached
  full shard scan, with the cached-vs-uncached speedup asserted against
  the ``min_speedup`` floor by the CI guard.
* **concurrent** -- N client threads hammering ``/score`` and
  ``/explain`` simultaneously through the routing layer: aggregate
  request throughput plus per-route latency under contention.

The scored margins are asserted bit-identical to an unsharded in-memory
pass over the same assembled matrix, so the speed being measured is the
speed of the *correct* path.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke

The headline run defaults to a multi-worker configuration
(``min(4, cpu)``) so the sharded scoring path is actually exercised;
a second single-worker pass is recorded as the ``serve_single_worker``
comparison row.  ``--workers`` or ``REPRO_WORKERS`` override the
fan-out, and the harness records the worker count it ran with.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.predictor import (
    PredictorConfig,
    TicketPredictor,
    _DerivedRecipes,
)
from repro.features.encoding import EncoderConfig, LineFeatureEncoder
from repro.measurement.records import N_FEATURES
from repro.ml.boostexter import BStump, BStumpConfig, WeakLearner
from repro.ml.calibration import PlattCalibrator
from repro.ml.stumps import Stump
from repro.netsim.population import PopulationConfig
from repro.obs.profile import resource_section
from repro.parallel import worker_count
from repro.serve import (
    LineWeekStore,
    ModelBundle,
    ScoringEngine,
    ScoringService,
    StoredWorld,
)


def _synthetic_weeks(rng, n_lines: int, n_weeks: int):
    """Plausible Table-2 matrices + ticket vectors, without a simulation."""
    weeks = []
    for week in range(n_weeks):
        day = 6 + 7 * week
        matrix = rng.normal(loc=10.0, scale=4.0, size=(n_lines, N_FEATURES))
        matrix[rng.random((n_lines, N_FEATURES)) < 0.08] = np.nan
        matrix = matrix.astype(np.float32)
        last_ticket = np.where(
            rng.random(n_lines) < 0.1,
            rng.integers(0, max(day, 1), size=n_lines),
            -1,
        ).astype(np.int64)
        weeks.append((week, day, matrix, last_ticket))
    return weeks


def _synthetic_bundle(rng, encoder, n_rounds: int, capacity: int) -> ModelBundle:
    """A fitted-looking predictor without paying for an actual fit.

    The stumps cover base, quadratic, and product columns so the lazy
    columnar assembly in the scoring engine is fully exercised.
    """
    base_count = encoder.base_feature_count()
    base_indices = sorted(
        int(i) for i in rng.choice(base_count, size=24, replace=False)
    )
    quad_indices = base_indices[:8]
    product_pairs = [
        (base_indices[i], base_indices[i + 1]) for i in range(0, 12, 2)
    ]
    recipes = _DerivedRecipes(
        base_indices=base_indices,
        quad_indices=quad_indices,
        product_pairs=product_pairs,
    )
    n_columns = recipes.n_columns

    model = BStump(BStumpConfig(n_rounds=n_rounds))
    model.n_features_ = n_columns
    model.learners = [
        WeakLearner(
            stump=Stump(
                feature=int(rng.integers(n_columns)),
                threshold=float(rng.normal(loc=10.0, scale=4.0)),
                s_lo=float(rng.normal(scale=0.1)),
                s_hi=float(rng.normal(scale=0.1)),
                s_miss=float(rng.normal(scale=0.05)),
                categorical=False,
                z=1.0,
            ),
            round_index=r,
            z=1.0,
        )
        for r in range(n_rounds)
    ]
    model.train_z_ = [1.0] * n_rounds
    calibrator = PlattCalibrator()
    calibrator.a = -1.0
    calibrator.b = 0.0
    calibrator.fitted_ = True
    model.calibrator = calibrator

    predictor = TicketPredictor(
        PredictorConfig(capacity=capacity), encoder=encoder
    )
    predictor.model = model
    predictor.recipes = recipes
    return ModelBundle(predictor=predictor, meta={"synthetic": True})


def _synthetic_locator(rng, n_features: int, n_rounds: int):
    """A fitted-looking Section-6 combined locator, no fit paid.

    52 disposition heads + 4 location heads of random stumps over the
    encoded base columns, uniform Platt calibrators, and mild Eq.-2
    blends -- enough structure to exercise the real stacked multi-head
    scoring path end to end.
    """
    from repro.core.locator import (
        N_DISPOSITIONS,
        N_LOCATIONS,
        CombinedLocator,
        LocatorConfig,
    )

    def _head(rounds: int) -> BStump:
        model = BStump(BStumpConfig(n_rounds=rounds, calibrate=False))
        model.n_features_ = n_features
        model.learners = [
            WeakLearner(
                stump=Stump(
                    feature=int(rng.integers(n_features)),
                    threshold=float(rng.normal(loc=10.0, scale=4.0)),
                    s_lo=float(rng.normal(scale=0.1)),
                    s_hi=float(rng.normal(scale=0.1)),
                    s_miss=float(rng.normal(scale=0.05)),
                    categorical=False,
                    z=1.0,
                ),
                round_index=r,
                z=1.0,
            )
            for r in range(rounds)
        ]
        model.train_z_ = [1.0] * rounds
        return model

    locator = CombinedLocator(LocatorConfig(n_rounds=n_rounds))
    flat = locator.flat
    prior = rng.random(N_DISPOSITIONS) + 0.1
    flat.prior_ = prior / prior.sum()
    for code in range(N_DISPOSITIONS):
        flat.models_[code] = _head(n_rounds)
        calibrator = PlattCalibrator()
        calibrator.a = -1.0
        calibrator.b = 0.0
        calibrator.fitted_ = True
        flat.calibrators_[code] = calibrator
        locator.blend_[code] = (1.0, 0.5, float(rng.normal(scale=0.1)))
    for loc in range(N_LOCATIONS):
        locator.location_models_[loc] = _head(n_rounds)
    return locator


def bench_serve(n_lines: int, n_weeks: int, n_rounds: int, shard_size: int,
                workers: int | None):
    rng = np.random.default_rng(20100802)
    weeks = _synthetic_weeks(rng, n_lines, n_weeks)

    with tempfile.TemporaryDirectory() as tmp:
        store = LineWeekStore.create(
            Path(tmp) / "store",
            n_lines=n_lines,
            population=PopulationConfig(n_lines=n_lines, seed=11),
        )
        start = time.perf_counter()
        for week, day, matrix, last_ticket in weeks:
            store.append_week(week, day, matrix, last_ticket)
        snapshot_seconds = time.perf_counter() - start

        # A fresh handle, so cold-path timing includes manifest + mmap reads.
        world = StoredWorld(LineWeekStore.open(store.root))
        bundle = _synthetic_bundle(
            rng, LineFeatureEncoder(EncoderConfig()), n_rounds,
            capacity=max(50, n_lines // 50),
        )
        bundle.predictor.model.compiled()  # compile outside the timed path
        engine = ScoringEngine(
            bundle, world, shard_size=shard_size, workers=workers
        )

        target = store.latest_week
        cold = engine.score_week(target)

        warm_seconds = float("inf")  # best-of-N, as in bench_perf
        for _ in range(3):
            engine._score_cache.clear()
            warm_start = time.perf_counter()
            engine.score_week(target)
            warm_seconds = min(warm_seconds, time.perf_counter() - warm_start)

        dispatch_start = time.perf_counter()
        dispatch = engine.dispatch(target)
        dispatch_seconds = time.perf_counter() - dispatch_start

        # Parity: unsharded in-memory pass over the same assembled matrix.
        base = engine.base_features(target)
        reference = bundle.predictor.score_features(base)
        parity = bool(np.array_equal(cold.scores, reference))

        # Locate throughput: N technician lookups one at a time vs one
        # batched multi-head pass over the same lines.  The first call
        # pays the multi-head compile and base-feature encode off the
        # clock; rankings must agree exactly.
        bundle.locator = _synthetic_locator(
            rng, base.matrix.shape[1], n_rounds
        )
        locate_ids = [
            int(i) for i in rng.integers(0, n_lines, size=min(200, n_lines))
        ]
        engine.locate(target, locate_ids[0])  # warm: compile + encode
        single_start = time.perf_counter()
        single_rankings = [
            engine.locate(target, line_id) for line_id in locate_ids
        ]
        locate_single_seconds = time.perf_counter() - single_start
        batch_start = time.perf_counter()
        batch_rankings = engine.locate_batch(target, locate_ids)
        locate_batch_seconds = time.perf_counter() - batch_start
        locate_parity = batch_rankings == single_rankings

    return {
        "n_lines": n_lines,
        "n_weeks": n_weeks,
        "n_rounds": n_rounds,
        "shard_size": shard_size,
        "n_shards": cold.n_shards,
        "workers": worker_count(workers),
        "snapshot_seconds": snapshot_seconds,
        "snapshot_line_weeks_per_sec": n_lines * n_weeks / snapshot_seconds,
        "encode_seconds": cold.encode_seconds,
        "score_seconds": cold.score_seconds,
        "cold_lines_per_sec": cold.lines_per_sec,
        "score_seconds_best": warm_seconds,
        "dispatch_seconds": dispatch_seconds,
        "dispatch_size": len(dispatch),
        "lines_per_sec": n_lines / warm_seconds,
        "parity_with_batch_scorer": parity,
        "locate_lines": len(locate_ids),
        "locate_single_seconds": locate_single_seconds,
        "locate_batch_seconds": locate_batch_seconds,
        "locate_single_lines_per_sec": len(locate_ids) / locate_single_seconds,
        "locate_batch_lines_per_sec": len(locate_ids) / locate_batch_seconds,
        "locate_batch_speedup": locate_single_seconds / locate_batch_seconds,
        "locate_parity": locate_parity,
    }


def _latency_ms(samples: list[float]) -> dict:
    """Exact p50/p95/p99 (ms) from raw per-request latencies."""
    ordered = sorted(samples)
    n = len(ordered)

    def pct(q: float) -> float:
        if n == 1:
            return ordered[0] * 1e3
        pos = q * (n - 1)
        lo = int(pos)
        frac = pos - lo
        hi = min(lo + 1, n - 1)
        return (ordered[lo] + (ordered[hi] - ordered[lo]) * frac) * 1e3

    return {
        "n_requests": n,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
    }


def bench_routes(n_lines: int, n_weeks: int, n_rounds: int, shard_size: int,
                 workers: int | None):
    """Per-route latency through the real service routing layer.

    Drives :meth:`ScoringService.dispatch_request` directly (no sockets,
    so the numbers are the service's own cost, not the kernel's) over a
    store of synthetic weeks and an injected synthetic engine.  The
    service's SLO monitor watches the same traffic; its status -- burn
    rates, attainment, any alerts -- is the report's ``slo`` section.
    """
    rng = np.random.default_rng(20100803)
    weeks = _synthetic_weeks(rng, n_lines, n_weeks)

    with tempfile.TemporaryDirectory() as tmp:
        store = LineWeekStore.create(
            Path(tmp) / "store",
            n_lines=n_lines,
            population=PopulationConfig(n_lines=n_lines, seed=11),
        )
        for week, day, matrix, last_ticket in weeks:
            store.append_week(week, day, matrix, last_ticket)

        service = ScoringService(
            store.root, Path(tmp) / "registry", shard_size=shard_size,
            workers=workers, require_model=False,
        )
        bundle = _synthetic_bundle(
            rng, LineFeatureEncoder(EncoderConfig()), n_rounds,
            capacity=max(50, n_lines // 50),
        )
        bundle.predictor.model.compiled()
        service.engine = ScoringEngine(
            bundle, service.world, shard_size=shard_size, workers=workers,
            model_version="bench-synthetic",
        )

        target = store.latest_week
        status, _ = service.dispatch_request("GET", f"/dispatch?week={target}")
        assert status == 200, f"warm dispatch failed with {status}"

        plan = [
            ("/score", 400, lambda: "/score?line="
             f"{int(rng.integers(n_lines))}&week={target}"),
            ("/dispatch", 60, lambda: f"/dispatch?week={target}"),
            ("/healthz", 100, lambda: "/healthz"),
            ("/health", 100, lambda: "/health"),
        ]
        routes = {}
        for route, n_requests, make_target in plan:
            samples = []
            for _ in range(n_requests):
                t0 = time.perf_counter()
                status, _ = service.dispatch_request("GET", make_target())
                samples.append(time.perf_counter() - t0)
                assert status == 200, f"{route} answered {status}"
            routes[route] = _latency_ms(samples)
        service.slo_monitor.tick()

    return {
        "n_lines": n_lines,
        "n_rounds": n_rounds,
        "workers": worker_count(workers),
        "routes": routes,
        "slo": service.slo_monitor.status(),
    }


def _store_with_weeks(tmp: Path, rng, n_lines: int, n_weeks: int):
    """A populated line-week store under ``tmp`` (shared bench setup)."""
    store = LineWeekStore.create(
        tmp / "store",
        n_lines=n_lines,
        population=PopulationConfig(n_lines=n_lines, seed=11),
    )
    for week, day, matrix, last_ticket in _synthetic_weeks(rng, n_lines,
                                                           n_weeks):
        store.append_week(week, day, matrix, last_ticket)
    return store


def _cached_service(tmp: Path, rng, store, n_lines: int, n_rounds: int,
                    shard_size: int, workers: int | None) -> ScoringService:
    """A service whose injected engine shares the service ScoreCache."""
    service = ScoringService(
        store.root, tmp / "registry", shard_size=shard_size,
        workers=workers, require_model=False,
    )
    bundle = _synthetic_bundle(
        rng, LineFeatureEncoder(EncoderConfig()), n_rounds,
        capacity=max(50, n_lines // 50),
    )
    bundle.predictor.model.compiled()
    service.engine = ScoringEngine(
        bundle, service.world, shard_size=shard_size, workers=workers,
        model_version="bench-synthetic", cache=service.cache,
    )
    return service


def bench_cache(n_lines: int, n_weeks: int, n_rounds: int, shard_size: int,
                workers: int | None):
    """Cached vs uncached repeat ``/score`` lookups through the ScoreCache.

    Uncached: the shared cache is invalidated and the engine-local week
    dict cleared before each pass, so every request pays the full shard
    scan (best-of-3, the ``bench_perf`` idiom).  Cached: the week is
    warmed once, then repeat lookups are served from the shared cache --
    the engine-local dict is cleared between requests so the measured
    path is the one that survives engine reloads.  The ``speedup`` row
    is guarded in CI against ``min_speedup``.
    """
    rng = np.random.default_rng(20100804)

    with tempfile.TemporaryDirectory() as tmp:
        store = _store_with_weeks(Path(tmp), rng, n_lines, n_weeks)
        service = _cached_service(Path(tmp), rng, store, n_lines, n_rounds,
                                  shard_size, workers)
        engine = service.engine
        target = store.latest_week

        uncached_seconds = float("inf")
        for _ in range(3):
            service.cache.invalidate(reason="bench-reset")
            engine._score_cache.clear()
            engine._base_cache = None
            t0 = time.perf_counter()
            status, _ = service.dispatch_request(
                "GET", f"/score?line={int(rng.integers(n_lines))}"
                       f"&week={target}")
            uncached_seconds = min(uncached_seconds,
                                   time.perf_counter() - t0)
            assert status == 200, f"uncached /score answered {status}"

        service.dispatch_request(
            "GET", f"/score?line=0&week={target}")  # warm the shared cache
        samples = []
        for _ in range(400):
            engine._score_cache.clear()
            t0 = time.perf_counter()
            status, _ = service.dispatch_request(
                "GET", f"/score?line={int(rng.integers(n_lines))}"
                       f"&week={target}")
            samples.append(time.perf_counter() - t0)
            assert status == 200, f"cached /score answered {status}"
        cached = _latency_ms(samples)
        stats = service.cache.stats()

    return {
        "n_lines": n_lines,
        "n_rounds": n_rounds,
        "workers": worker_count(workers),
        "uncached_ms": uncached_seconds * 1e3,
        "cached_ms_p50": cached["p50_ms"],
        "cached_ms_p95": cached["p95_ms"],
        "cached_requests": cached["n_requests"],
        "speedup": uncached_seconds * 1e3 / max(cached["p50_ms"], 1e-9),
        "min_speedup": 10.0,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": stats["hit_rate"],
    }


def bench_concurrent(n_lines: int, n_weeks: int, n_rounds: int,
                     shard_size: int, workers: int | None,
                     n_threads: int = 8, requests_per_thread: int = 40):
    """N client threads hammering ``/score`` and ``/explain`` at once.

    Every thread drives the real routing layer (socket-free) against one
    warmed service; request targets are pre-generated so the threads
    share no RNG.  Reports aggregate throughput and per-route latency
    under contention, plus any non-200 answers (there must be none).
    """
    import threading

    rng = np.random.default_rng(20100805)

    with tempfile.TemporaryDirectory() as tmp:
        store = _store_with_weeks(Path(tmp), rng, n_lines, n_weeks)
        service = _cached_service(Path(tmp), rng, store, n_lines, n_rounds,
                                  shard_size, workers)
        engine = service.engine
        target = store.latest_week
        base = engine.base_features(target)
        engine.bundle.locator = _synthetic_locator(
            rng, base.matrix.shape[1], n_rounds
        )

        # Warm every shared structure (scores, features, triage, the
        # multi-head locator compile) so the threads measure steady-state
        # request cost, not a racing first shard scan.
        for path in (f"/dispatch?week={target}",
                     f"/explain?line=0&week={target}"):
            status, _ = service.dispatch_request("GET", path)
            assert status == 200, f"warm {path} answered {status}"

        plans = []
        for _ in range(n_threads):
            lines = rng.integers(0, n_lines, size=requests_per_thread)
            plans.append([
                (f"/score?line={int(line)}&week={target}", "/score")
                if i % 2 == 0 else
                (f"/explain?line={int(line)}&week={target}&top=3",
                 "/explain")
                for i, line in enumerate(lines)
            ])

        per_thread = [{"/score": [], "/explain": []} for _ in plans]
        errors = []

        def client(plan, samples):
            for path, route in plan:
                t0 = time.perf_counter()
                status, _ = service.dispatch_request("GET", path)
                samples[route].append(time.perf_counter() - t0)
                if status != 200:
                    errors.append((route, status))

        threads = [
            threading.Thread(target=client, args=(plan, samples))
            for plan, samples in zip(plans, per_thread)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start

    routes = {
        route: _latency_ms(
            [s for samples in per_thread for s in samples[route]]
        )
        for route in ("/score", "/explain")
    }
    total = n_threads * requests_per_thread
    return {
        "n_lines": n_lines,
        "n_rounds": n_rounds,
        "workers": worker_count(workers),
        "threads": n_threads,
        "requests": total,
        "wall_seconds": wall_seconds,
        "requests_per_sec": total / wall_seconds,
        "errors": len(errors),
        "routes": routes,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lines", type=int, default=120_000,
                        help="synthetic population size")
    parser.add_argument("--weeks", type=int, default=8,
                        help="stored weeks")
    parser.add_argument("--rounds", type=int, default=200,
                        help="synthetic ensemble depth")
    parser.add_argument("--shard-size", type=int, default=16_384,
                        help="lines per scoring shard")
    parser.add_argument("--workers", type=int, default=None,
                        help="scoring fan-out (default: REPRO_WORKERS, or "
                             "min(4, cpu) when unset)")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a CI smoke run")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_serve.json")
    args = parser.parse_args()

    if args.quick:
        n_lines, n_weeks, n_rounds, shard = 8_000, 3, 60, 2_048
    else:
        n_lines, n_weeks, n_rounds, shard = (
            args.lines, args.weeks, args.rounds, args.shard_size
        )

    # Fan-out resolution: explicit flag > REPRO_WORKERS > min(4, cpu).
    # The multi-worker default keeps the headline number on the sharded
    # scoring path instead of a degenerate one-worker run.
    workers = args.workers
    if workers is None and not os.environ.get("REPRO_WORKERS", "").strip():
        workers = min(4, os.cpu_count() or 1)

    from repro.serve.service import _Handler

    report = {
        "quick": args.quick,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "workers_env": os.environ.get("REPRO_WORKERS", ""),
        # The concurrency model the numbers were taken under: the HTTP
        # front (threaded server, keep-alive protocol) and the scoring
        # fan-out behind it.
        "server": {
            "model": "ThreadingHTTPServer",
            "protocol": _Handler.protocol_version,
            "scoring_workers": worker_count(workers),
        },
        "serve": bench_serve(n_lines, n_weeks, n_rounds, shard, workers),
    }
    if worker_count(workers) > 1:
        report["serve_single_worker"] = bench_serve(
            n_lines, n_weeks, n_rounds, shard, 1
        )
    report["serve_routes"] = bench_routes(
        n_lines, n_weeks, n_rounds, shard, workers
    )
    report["serve_cache"] = bench_cache(
        n_lines, n_weeks, n_rounds, shard, workers
    )
    report["serve_concurrent"] = bench_concurrent(
        n_lines, n_weeks, n_rounds, shard, workers,
        requests_per_thread=20 if args.quick else 40,
    )
    report["resources"] = resource_section()
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    serve = report["serve"]
    print(f"snapshot: {serve['snapshot_line_weeks_per_sec']:.0f} "
          f"line-weeks/s over {n_weeks} weeks x {n_lines} lines")
    print(f"cold:     {serve['cold_lines_per_sec']:.0f} lines/s "
          f"(encode {serve['encode_seconds']:.3f}s + "
          f"score {serve['score_seconds']:.3f}s, "
          f"{serve['n_shards']} shards, {serve['workers']} workers)")
    print(f"score:    {serve['lines_per_sec']:.0f} lines/s "
          f"(best of 3 full passes, {serve['score_seconds_best']:.3f}s)")
    print(f"dispatch: top-{serve['dispatch_size']} "
          f"in {serve['dispatch_seconds'] * 1e3:.1f} ms")
    print(f"locate:   {serve['locate_batch_lines_per_sec']:.0f} lines/s "
          f"batched vs {serve['locate_single_lines_per_sec']:.0f} lines/s "
          f"one-at-a-time ({serve['locate_batch_speedup']:.1f}x over "
          f"{serve['locate_lines']} lines), "
          f"rankings identical: {serve['locate_parity']}")
    print(f"parity with batch scorer: {serve['parity_with_batch_scorer']}")
    single = report.get("serve_single_worker")
    if single is not None:
        speedup = serve["lines_per_sec"] / max(single["lines_per_sec"], 1e-9)
        print(f"single-worker comparison: {single['lines_per_sec']:.0f} "
              f"lines/s ({serve['workers']} workers = {speedup:.2f}x)")
    route_report = report["serve_routes"]
    for route, stats in route_report["routes"].items():
        print(f"route {route}: p50 {stats['p50_ms']:.3f} ms, "
              f"p95 {stats['p95_ms']:.3f} ms, p99 {stats['p99_ms']:.3f} ms "
              f"over {stats['n_requests']} requests")
    print(f"slo:      {route_report['slo']['status']} "
          f"({len(route_report['slo'].get('objectives', []))} objectives)")
    cache = report["serve_cache"]
    print(f"cache:    uncached {cache['uncached_ms']:.1f} ms -> cached p50 "
          f"{cache['cached_ms_p50']:.3f} ms ({cache['speedup']:.0f}x, "
          f"floor {cache['min_speedup']:.0f}x; hit rate "
          f"{cache['hit_rate']:.0%})")
    conc = report["serve_concurrent"]
    print(f"load:     {conc['threads']} threads x "
          f"{conc['requests'] // conc['threads']} requests = "
          f"{conc['requests_per_sec']:.0f} req/s, {conc['errors']} errors; "
          f"/score p95 {conc['routes']['/score']['p95_ms']:.2f} ms, "
          f"/explain p95 {conc['routes']['/explain']['p95_ms']:.2f} ms")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
