"""E2 -- Section 3.3: weekly ticket seasonality.

The paper observes a clear weekly trend in ticket arrivals -- peaking on
Monday, bottoming out over the weekend -- which is why the Saturday line
tests leave a quiet window to resolve predicted problems proactively.
"""

import numpy as np

_DAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def test_weekly_ticket_trend(world, benchmark, write_result):
    hist = benchmark.pedantic(
        world.ticket_log.weekday_histogram, rounds=1, iterations=1
    )
    total = hist.sum()
    shares = hist / total
    table = "\n".join(
        f"{day:>4}: {count:>6}  ({share:5.1%})"
        for day, count, share in zip(_DAYS, hist, shares)
    )
    write_result("section33_seasonality", table)

    assert total > 1000, "need a substantial ticket stream"
    # Monday peak.
    assert int(np.argmax(hist)) == 0
    # Weekend trough: Saturday and Sunday are the two smallest days.
    assert set(np.argsort(hist)[:2]) == {5, 6}
    # The paper's operational argument: the weekend carries much less
    # ticket load than the Monday peak, leaving proactive capacity.
    assert shares[5] + shares[6] < 2 * shares[0]
