"""E6 -- Fig 8: CDF of time from prediction to customer ticket.

The paper plots, for the top 10K/20K/100K predictions, the CDF of the
delay until the customer actually reported; ~80 % of predicted tickets
arrive within two weeks, and a Monday fix deadline (2 days after the
Saturday prediction) misses at most 15 % of them, a 3-day turnaround at
most 20 %.
"""

import numpy as np

from repro.core.analysis import missed_ticket_fraction, urgency_cdf

from benchmarks.conftest import CAPACITY

_TIERS = {
    "top 10K-equivalent": CAPACITY // 2,
    "top 20K-equivalent": CAPACITY,
    "top 100K-equivalent": CAPACITY * 5,
}


def test_fig8_urgency_cdf(test_outcomes, benchmark, write_result):
    cdfs = benchmark.pedantic(
        lambda: {
            name: urgency_cdf(test_outcomes, n, max_days=28)
            for name, n in _TIERS.items()
        },
        rounds=1, iterations=1,
    )
    rows = ["days:                " + "  ".join(f"{d:>5}" for d in (2, 5, 7, 14, 21, 28))]
    for name, cdf in cdfs.items():
        rows.append(
            f"{name:>20}: " + "  ".join(f"{cdf[d]:5.2f}" for d in (2, 5, 7, 14, 21, 28))
        )
    miss2 = missed_ticket_fraction(test_outcomes, CAPACITY, fix_days=2)
    miss3 = missed_ticket_fraction(test_outcomes, CAPACITY, fix_days=3)
    rows.append(f"missed with 2-day fix SLA: {miss2:.1%} (paper: <= 15%)")
    rows.append(f"missed with 3-day fix SLA: {miss3:.1%} (paper: <= 20%)")
    write_result("fig8_urgency", "\n".join(rows))

    for cdf in cdfs.values():
        assert np.all(np.diff(cdf) >= 0)
        # Most predicted tickets arrive within two weeks (paper ~80%; our
        # slow-burn faults and long-absence customers stretch the tail).
        assert cdf[14] > 0.45
        assert cdf[28] == 1.0

    # Operators fixing everything by Monday miss only a small tail.
    assert miss2 < 0.35
    assert miss3 < 0.45
    assert miss2 <= miss3
