"""Performance harness for the lifecycle shadow-scoring path.

Promotion decisions score two models -- champion and challenger -- over
the same stored weeks.  The naive way doubles the whole serving cost;
the lifecycle path (:func:`repro.serve.score_bundles`) encodes each
shard once and repeats only the cheap compiled-ensemble fold, so shadow
evaluation must land well under 2x the champion-only run.  This harness
measures exactly that ratio and writes it to ``BENCH_lifecycle.json``:

* **champion_only** -- one bundle through a solo ``ScoringEngine`` run
  (the weekly Saturday scoring cost, best-of-N with the cache cleared);
* **shadow** -- champion + challenger through ``score_bundles`` on the
  shared-encode path (what every promotion gate pays), best-of-N;
* **naive_shadow** -- two sequential solo engine runs, the cost the
  shared encode avoids;
* **overhead_ratio** -- shadow / champion_only; the CI smoke job fails
  when it reaches 2.0.

Scores from the shadow path are asserted bit-identical to the solo
engine's, so the ratio being measured is the ratio of *correct* paths.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_lifecycle.py            # full
    PYTHONPATH=src python benchmarks/bench_lifecycle.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_serve import _synthetic_bundle, _synthetic_weeks
from repro.features.encoding import EncoderConfig, LineFeatureEncoder
from repro.netsim.population import PopulationConfig
from repro.obs.profile import resource_section
from repro.parallel import worker_count
from repro.serve import (
    LineWeekStore,
    ScoringEngine,
    StoredWorld,
    score_bundles,
)


def _best_of(n: int, run) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def bench_shadow(n_lines: int, n_weeks: int, n_rounds: int, shard_size: int,
                 workers: int | None, repeats: int = 3):
    rng = np.random.default_rng(20100805)
    weeks = _synthetic_weeks(rng, n_lines, n_weeks)

    with tempfile.TemporaryDirectory() as tmp:
        store = LineWeekStore.create(
            Path(tmp) / "store",
            n_lines=n_lines,
            population=PopulationConfig(n_lines=n_lines, seed=11),
        )
        for week, day, matrix, last_ticket in weeks:
            store.append_week(week, day, matrix, last_ticket)

        world = StoredWorld(LineWeekStore.open(store.root))
        encoder = LineFeatureEncoder(EncoderConfig())
        capacity = max(50, n_lines // 50)
        # Independently drawn stump sets: the challenger assembles its
        # own derived columns, as a real retrained model would.
        champion = _synthetic_bundle(rng, encoder, n_rounds, capacity)
        challenger = _synthetic_bundle(rng, encoder, n_rounds, capacity)
        champion.predictor.model.compiled()
        challenger.predictor.model.compiled()
        target = store.latest_week

        engine = ScoringEngine(
            champion, world, shard_size=shard_size, workers=workers
        )

        def champion_only():
            engine._score_cache.clear()
            return engine.score_week(target)

        def shadow():
            return score_bundles(
                {"champion": champion, "challenger": challenger},
                world, target, shard_size=shard_size, workers=workers,
            )

        def naive_shadow():
            for bundle in (champion, challenger):
                solo = ScoringEngine(
                    bundle, world, shard_size=shard_size, workers=workers
                )
                solo.score_week(target)

        champion_seconds = _best_of(repeats, champion_only)
        shadow_seconds = _best_of(repeats, shadow)
        naive_seconds = _best_of(repeats, naive_shadow)

        # Parity: the shared-encode path must reproduce the solo engine.
        engine._score_cache.clear()
        solo_scores = engine.score_week(target).scores
        shared = shadow()
        parity = bool(np.array_equal(shared["champion"], solo_scores))

    return {
        "n_lines": n_lines,
        "n_weeks": n_weeks,
        "n_rounds": n_rounds,
        "shard_size": shard_size,
        "workers": worker_count(workers),
        "repeats": repeats,
        "champion_only_seconds": champion_seconds,
        "shadow_seconds": shadow_seconds,
        "naive_shadow_seconds": naive_seconds,
        "overhead_ratio": shadow_seconds / champion_seconds,
        "naive_ratio": naive_seconds / champion_seconds,
        "shared_encode_speedup": naive_seconds / shadow_seconds,
        "shadow_lines_per_sec": 2 * n_lines / shadow_seconds,
        "parity_with_solo_engine": parity,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lines", type=int, default=120_000,
                        help="synthetic population size")
    parser.add_argument("--weeks", type=int, default=4,
                        help="stored weeks")
    parser.add_argument("--rounds", type=int, default=200,
                        help="synthetic ensemble depth")
    parser.add_argument("--shard-size", type=int, default=16_384,
                        help="lines per scoring shard")
    parser.add_argument("--workers", type=int, default=None,
                        help="scoring fan-out (default: REPRO_WORKERS or 1)")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for a CI smoke run")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when shadow/champion reaches this ratio")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_lifecycle.json")
    args = parser.parse_args()

    if args.quick:
        n_lines, n_weeks, n_rounds, shard = 8_000, 3, 60, 2_048
    else:
        n_lines, n_weeks, n_rounds, shard = (
            args.lines, args.weeks, args.rounds, args.shard_size
        )

    report = {
        "quick": args.quick,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "workers_env": os.environ.get("REPRO_WORKERS", ""),
        "max_ratio": args.max_ratio,
        "shadow": bench_shadow(
            n_lines, n_weeks, n_rounds, shard, args.workers
        ),
    }
    report["resources"] = resource_section()
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    shadow = report["shadow"]
    print(f"champion-only: {shadow['champion_only_seconds']:.3f}s "
          f"({n_lines} lines, {n_rounds} rounds, "
          f"{shadow['workers']} workers)")
    print(f"shadow pair:   {shadow['shadow_seconds']:.3f}s shared-encode "
          f"(ratio {shadow['overhead_ratio']:.2f}x), "
          f"naive {shadow['naive_shadow_seconds']:.3f}s "
          f"({shadow['naive_ratio']:.2f}x)")
    print(f"parity with solo engine: {shadow['parity_with_solo_engine']}")
    print(f"wrote {args.output}")

    if not shadow["parity_with_solo_engine"]:
        raise SystemExit("shadow scores diverged from the solo engine")
    if shadow["overhead_ratio"] >= args.max_ratio:
        raise SystemExit(
            f"shadow overhead {shadow['overhead_ratio']:.2f}x >= "
            f"{args.max_ratio:.1f}x budget"
        )


if __name__ == "__main__":
    main()
