"""E8 -- Section 5.2: incorrect predictions from customers not on site.

The paper samples per-customer byte counts under two BRAS servers and
finds that 18 of 108 (16.7 %) of the traffic-instrumented incorrect
predictions had no traffic from a week before to a week after the
prediction -- the customer was away and could not notice the problem.

A simulator-only complement: the oracle fraction of incorrect predictions
whose line had a genuinely active fault, which the paper can only argue
indirectly.
"""

import numpy as np

from repro.core.analysis import (
    explain_incorrect_by_absence,
    ground_truth_problem_fraction,
)

from benchmarks.conftest import CAPACITY


def test_not_on_site_analysis(world, test_outcomes, benchmark, write_result):
    def analyse():
        observed = 0
        absent = 0
        oracle_fracs = []
        for outcome in test_outcomes:
            incorrect = outcome.incorrect_top(CAPACITY)
            o, a = explain_incorrect_by_absence(
                world.traffic, incorrect, outcome.day
            )
            observed += o
            absent += a
            oracle_fracs.append(
                ground_truth_problem_fraction(world, incorrect, outcome.day)
            )
        return observed, absent, float(np.mean(oracle_fracs))

    observed, absent, oracle = benchmark.pedantic(analyse, rounds=1, iterations=1)
    share = absent / observed if observed else 0.0

    # Fair baseline: the fraction of *all* sampled lines that would test
    # not-on-site at the same prediction days (not the weekly away rate --
    # the paper's test needs ~15 silent days, which is much rarer).
    rng = np.random.default_rng(5)
    sampled = world.traffic.line_ids
    probe = rng.choice(sampled, size=min(2000, len(sampled)), replace=False)
    baseline_hits = 0
    baseline_total = 0
    for outcome in test_outcomes:
        for line in probe:
            baseline_total += 1
            if world.traffic.not_on_site(int(line), outcome.day):
                baseline_hits += 1
    baseline = baseline_hits / baseline_total if baseline_total else 0.0

    write_result(
        "section52_not_on_site",
        "\n".join([
            f"incorrect predictions with traffic data : {observed}",
            f"of which not on site                    : {absent} ({share:.1%})",
            f"population not-on-site baseline         : {baseline:.1%}",
            f"oracle: incorrect preds w/ real fault   : {oracle:.1%}",
            "(paper: 18 of 108 = 16.7% not on site)",
        ]),
    )

    assert observed > 20, "the BRAS sample must cover some incorrect predictions"
    # Away customers cannot report, so they are over-represented among
    # incorrect predictions relative to the population silent-window rate.
    assert share > baseline
    # And a large share of 'incorrect' predictions are real, unreported
    # problems -- the paper's central defence of its conservative metric.
    assert oracle > 0.2
