"""E11 -- footnote 4: training and ranking cost scaling.

The paper: 800 boosting rounds on 1M records take ~2 h on a 2009 server
without parallelisation, and ranking several million lines takes < 15 min.
Absolute numbers are hardware-bound; the reproducible *shape* is that both
training and scoring scale (near-)linearly in the number of records, so
the system stays deployable as the population grows.
"""

import time

import numpy as np
import pytest

from repro.ml.boostexter import BStump, BStumpConfig

N_FEATURES = 40
ROUNDS = 60


def make_data(n, rng):
    X = rng.normal(size=(n, N_FEATURES))
    y = (X[:, 0] + 0.6 * X[:, 1] + 0.5 * rng.normal(size=n) > 0).astype(float)
    X[rng.random(X.shape) < 0.05] = np.nan
    return X, y


@pytest.fixture(scope="module")
def scaling_table(write_result):
    rng = np.random.default_rng(0)
    sizes = [4_000, 16_000, 64_000]
    rows = []
    timings = {}
    for n in sizes:
        X, y = make_data(n, rng)
        t0 = time.perf_counter()
        model = BStump(BStumpConfig(n_rounds=ROUNDS)).fit(X, y)
        fit_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        model.decision_function(X)
        score_s = time.perf_counter() - t0
        timings[n] = (fit_s, score_s)
        rows.append(
            f"n={n:>6}: fit {fit_s:7.2f}s ({1e6 * fit_s / n:6.1f} us/row), "
            f"rank {score_s:6.2f}s ({1e6 * score_s / n:6.2f} us/row)"
        )
    write_result("footnote4_scaling", "\n".join(rows))
    return timings


def test_training_scales_subquadratically(scaling_table, benchmark):
    timings = benchmark.pedantic(lambda: scaling_table, rounds=1, iterations=1)
    sizes = sorted(timings)
    # 16x more rows must cost far less than 16^2 more time; allow up to
    # ~O(n log n) with generous constant slack.
    ratio = timings[sizes[-1]][0] / timings[sizes[0]][0]
    growth = sizes[-1] / sizes[0]
    assert ratio < growth * 4

    # Ranking is much cheaper than training (the paper: 15 min vs 2 h).
    for n in sizes:
        fit_s, score_s = timings[n]
        assert score_s < fit_s / 5


def test_single_fit_benchmark(benchmark):
    """A standard pytest-benchmark timing of one mid-size training run."""
    rng = np.random.default_rng(1)
    X, y = make_data(16_000, rng)

    def fit():
        return BStump(BStumpConfig(n_rounds=20)).fit(X, y)

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert len(model.learners) > 0
