"""E9 & E10 -- Section 6.3 / Fig 10: trouble-locator evaluation.

E9: *"using the basic ranks, in order to locate 50% of the problems, a
maximum of 9 tests are needed.  In comparison, using either the flat model
or the combined model, only a maximum of 4 tests are required"* -- the
learned locators roughly halve the median testing effort.

E10 (Fig 10): binning dispatches by their basic (experience-model) rank,
both learned models improve the average rank, the improvement grows for
problems ranked deeper by the prior, and the combined model beats the flat
model on those deep ranks.
"""

import numpy as np
import pytest

# ``tests_to_locate`` is aliased so pytest does not collect it as a test.
from repro.core.locator import (
    CombinedLocator,
    ExperienceModel,
    FlatLocator,
    LocatorConfig,
    rank_improvement_by_bin,
    ranks_of_truth,
)
from repro.core.locator import tests_to_locate as locate_quantile
from repro.data.joins import build_locator_dataset


@pytest.fixture(scope="module")
def locator_eval(world):
    """Train on the first ~60 % of dispatches, evaluate on the rest
    (mirroring the paper's 7-week train / 7-week test layout)."""
    horizon = world.config.n_weeks * 7
    cut = int(horizon * 0.6)
    train = build_locator_dataset(world, first_day=35, last_day=cut)
    test = build_locator_dataset(world, first_day=cut + 1, last_day=horizon)

    config = LocatorConfig(n_rounds=100)
    X = test.features.matrix
    ranks = {
        "basic": ranks_of_truth(
            ExperienceModel(config).fit(train).predict_proba(X),
            test.disposition,
        ),
        "flat": ranks_of_truth(
            FlatLocator(config).fit(train).predict_proba(X), test.disposition
        ),
        "combined": ranks_of_truth(
            CombinedLocator(config).fit(train).predict_proba(X),
            test.disposition,
        ),
    }
    return train, test, ranks


def test_e9_tests_to_locate(locator_eval, benchmark, write_result):
    train, test, ranks = benchmark.pedantic(
        lambda: locator_eval, rounds=1, iterations=1
    )
    medians = {name: locate_quantile(r, 0.5) for name, r in ranks.items()}
    p75 = {name: locate_quantile(r, 0.75) for name, r in ranks.items()}
    write_result(
        "section63_tests_to_locate",
        "\n".join([
            f"training dispatches : {train.n_examples}",
            f"test dispatches     : {test.n_examples}",
            f"{'model':>10} {'median tests':>13} {'p75 tests':>10} {'mean rank':>10}",
        ] + [
            f"{name:>10} {medians[name]:>13} {p75[name]:>10} "
            f"{ranks[name].mean():>10.1f}"
            for name in ("basic", "flat", "combined")
        ] + ["(paper: basic 9 vs models 4 at the median)"]),
    )

    # The learned models need fewer tests to cover half the problems.
    assert medians["flat"] <= medians["basic"]
    assert medians["combined"] <= medians["basic"]
    assert medians["combined"] < medians["basic"], "no median improvement"
    # And the overall ranking is better on average.
    assert ranks["combined"].mean() < ranks["basic"].mean()


def test_e10_fig10_rank_improvement(locator_eval, benchmark, write_result):
    _, test, ranks = benchmark.pedantic(
        lambda: locator_eval, rounds=1, iterations=1
    )
    basic = ranks["basic"]
    tables = {}
    rows_text = []
    for name in ("flat", "combined"):
        rows = rank_improvement_by_bin(basic, ranks[name], bin_width=5)
        tables[name] = rows
        rows_text.append(f"== {name} model ==")
        for row in rows:
            rows_text.append(
                f"  basic rank {int(row['bin_low']):>2}-{int(row['bin_high']):>2} "
                f"(n={int(row['count']):>4}): "
                f"mean rank change {row['mean_rank_change']:+.2f}"
            )
    write_result("fig10_rank_change", "\n".join(rows_text))

    for name, rows in tables.items():
        deep = [r for r in rows if r["bin_low"] >= 16 and r["count"] >= 10]
        shallow = [r for r in rows if r["bin_high"] <= 5]
        assert deep, "need populated deep bins"
        deep_gain = np.mean([r["mean_rank_change"] for r in deep])
        # Fig 10: clear positive improvement on deep-ranked problems...
        assert deep_gain > 1.0, (name, deep_gain)
        # ...much larger than whatever happens in the shallow bins.
        if shallow:
            shallow_gain = np.mean([r["mean_rank_change"] for r in shallow])
            assert deep_gain > shallow_gain

    # The combined model's edge over the flat model shows on deep ranks.
    deep_mask = basic >= 16
    if deep_mask.sum() >= 30:
        flat_gain = float(np.mean((basic - ranks["flat"])[deep_mask]))
        combined_gain = float(np.mean((basic - ranks["combined"])[deep_mask]))
        assert combined_gain >= flat_gain - 0.5
